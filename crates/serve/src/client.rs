//! Blocking client for the query server.

use crate::protocol::{
    encode_frame_raw, read_frame, write_frame, FrameIn, FrameParams, Message, Region, ServerReport,
};
use oociso_march::IndexedMesh;
use oociso_render::Framebuffer;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A decoded mesh reply plus its serving metadata.
#[derive(Clone, Debug)]
pub struct MeshReply {
    /// The isosurface (bit-identical to the server's in-process result).
    pub mesh: IndexedMesh,
    /// Whether the server answered from its result cache.
    pub cache_hit: bool,
    /// Active metacells of the producing extraction.
    pub active_metacells: u64,
}

/// A decoded framebuffer reply.
#[derive(Clone, Debug)]
pub struct FrameReply {
    /// The reassembled full-viewport framebuffer.
    pub framebuffer: Framebuffer,
    /// Whether the backing surface came from the result cache.
    pub cache_hit: bool,
    /// Tile regions exactly as they crossed the wire.
    pub regions: Vec<oociso_render::FrameRegion>,
}

/// A server-reported failure, lifted out of the error frame.
fn server_error(code: u16, detail: String) -> io::Error {
    io::Error::other(format!("server error {code}: {detail}"))
}

fn unexpected(msg: &Message) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response type {}", msg.msg_type()),
    )
}

/// A blocking connection to an [`crate::IsoServer`].
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// One request/response exchange.
    fn roundtrip(&mut self, msg: &Message) -> io::Result<Message> {
        write_frame(&mut self.stream, msg)?;
        match read_frame(&mut self.stream)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(FrameIn::Ok { msg: reply, .. }) => Ok(reply),
            Some(FrameIn::Violation { code, detail, .. }) => Err(server_error(code, detail)),
        }
    }

    /// Query the isosurface at `iso`, optionally restricted to a region
    /// (full resolution — LOD level 0).
    pub fn query_mesh(&mut self, iso: f32, region: Option<Region>) -> io::Result<MeshReply> {
        self.query_mesh_lod(iso, region, 0)
    }

    /// Query LOD pyramid level `lod` of the isosurface at `iso` (0 = full
    /// resolution), optionally restricted to a region. Levels the server
    /// does not have come back as a structured `ERR_BAD_LOD` error.
    pub fn query_mesh_lod(
        &mut self,
        iso: f32,
        region: Option<Region>,
        lod: u16,
    ) -> io::Result<MeshReply> {
        match self.roundtrip(&Message::MeshRequest { iso, region, lod })? {
            Message::MeshResponse {
                cache_hit,
                active_metacells,
                mesh,
            } => Ok(MeshReply {
                mesh,
                cache_hit,
                active_metacells,
            }),
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query a rendered frame of the isosurface at `iso` and reassemble the
    /// tiles into one framebuffer.
    pub fn query_frame(&mut self, iso: f32, params: FrameParams) -> io::Result<FrameReply> {
        match self.roundtrip(&Message::FrameRequest { iso, params })? {
            Message::FrameResponse {
                cache_hit,
                width,
                height,
                regions,
            } => {
                let mut fb = Framebuffer::new(width as usize, height as usize);
                for r in &regions {
                    r.merge_into(&mut fb, (0, 0));
                }
                Ok(FrameReply {
                    framebuffer: fb,
                    cache_hit,
                    regions,
                })
            }
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> io::Result<ServerReport> {
        match self.roundtrip(&Message::StatsRequest)? {
            Message::StatsResponse(report) => Ok(report),
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }

    /// Round-trip a payload of `bytes` zeros through the server's echo,
    /// returning the measured wall-clock (the calibration probe behind
    /// [`crate::measure_loopback`]).
    pub fn ping(&mut self, bytes: usize) -> io::Result<Duration> {
        let payload = vec![0u8; bytes];
        let t0 = Instant::now();
        match self.roundtrip(&Message::Ping {
            payload: payload.clone(),
        })? {
            Message::Pong { payload: echoed } => {
                if echoed != payload {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "pong payload differs from ping",
                    ));
                }
                Ok(t0.elapsed())
            }
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }

    /// Send a frame with explicit header fields and return the server's
    /// reply message — the hook the protocol-abuse tests (wrong magic,
    /// future version, corrupted checksum) drive the server with. Returns
    /// `Ok(None)` if the server hung up instead of replying.
    pub fn roundtrip_raw(
        &mut self,
        magic: u32,
        version: u16,
        msg_type: u16,
        payload: &[u8],
        corrupt_checksum: bool,
    ) -> io::Result<Option<Message>> {
        let mut frame = encode_frame_raw(magic, version, msg_type, payload);
        if corrupt_checksum {
            let n = frame.len();
            frame[n - 1] ^= 0xFF;
        }
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        match read_frame(&mut self.stream) {
            Ok(None) => Ok(None),
            Ok(Some(FrameIn::Ok { msg: reply, .. })) => Ok(Some(reply)),
            Ok(Some(FrameIn::Violation { code, detail, .. })) => Err(server_error(code, detail)),
            // a reset mid-read also counts as "hung up"
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => Ok(None),
            Err(e) => Err(e),
        }
    }
}
