//! Blocking client for the query server, with per-request deadlines and
//! structured retry.
//!
//! The pre-v3 client trusted the server completely: a stalled peer hung
//! `query_mesh` forever, and any hiccup was the caller's problem.
//! [`ClientOptions`] makes the failure policy explicit:
//!
//! * **Deadlines** — socket read/write timeouts bound every request;
//!   expiry surfaces as [`io::ErrorKind::TimedOut`].
//! * **Overload** — a structured `ERR_BUSY` reply is retried with jittered
//!   exponential backoff, honoring the server's `retry_after_ms` hint.
//!   The jitter is seeded and deterministic per client, so tests replay
//!   exactly.
//! * **Torn connections** — resets, EOFs, and timeouts mid-exchange are
//!   retried by reconnecting, but **only for idempotent requests** (every
//!   current request type is a read; a future mutating message must opt
//!   out via [`idempotent`]) — a retry can duplicate a request, and only
//!   idempotence makes that safe.
//!
//! Server-reported failures carry their protocol error code as a typed
//! [`ServerError`] inside the `io::Error`, so callers can tell an honest
//! `ERR_BUSY` from a malformed request without string matching.

use crate::protocol::{
    encode_frame_raw, read_frame, write_frame, ChunkBody, FrameIn, FrameParams, Message, Region,
    ServerReport, TraceEvent, ERR_BUSY,
};
use oociso_march::{Backend, IndexedMesh};
use oociso_render::Framebuffer;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A decoded mesh reply plus its serving metadata.
#[derive(Clone, Debug)]
pub struct MeshReply {
    /// The isosurface (bit-identical to the server's in-process result).
    pub mesh: IndexedMesh,
    /// Whether the server answered from its result cache.
    pub cache_hit: bool,
    /// Active metacells of the producing extraction.
    pub active_metacells: u64,
    /// The LOD level the server actually served (equals the requested
    /// level unless `degraded`; always 0 from pre-v3 servers).
    pub served_lod: u16,
    /// True when the server satisfied the request from a cached coarser
    /// level under overload instead of shedding it.
    pub degraded: bool,
    /// The extraction backend id that produced the mesh
    /// (`oociso_march::Backend::from_id`; always 0/MC from pre-v4 servers).
    pub backend: u8,
    /// Echo of the trace id this request carried (0 = untraced, and always
    /// 0 from pre-v5 servers). A nonzero echo can be handed to
    /// [`Client::trace`] to pull the request's span tree.
    pub trace_id: u64,
}

/// One refinement step of a progressive mesh delivery (protocol v6),
/// handed to the [`Client::query_mesh_progressive`] callback as each chunk
/// arrives and is reconstructed.
#[derive(Debug)]
pub struct ProgressiveUpdate<'a> {
    /// The LOD pyramid level this chunk refined the surface to.
    pub level: u16,
    /// Whether the server served this level from its result cache.
    pub cache_hit: bool,
    /// Whether the level crossed the wire as a collapse-record delta
    /// against the previous chunk (false = full mesh).
    pub delta: bool,
    /// The level's complete reconstructed mesh.
    pub mesh: &'a IndexedMesh,
}

/// A decoded framebuffer reply.
#[derive(Clone, Debug)]
pub struct FrameReply {
    /// The reassembled full-viewport framebuffer.
    pub framebuffer: Framebuffer,
    /// Whether the backing surface came from the result cache.
    pub cache_hit: bool,
    /// Tile regions exactly as they crossed the wire.
    pub regions: Vec<oociso_render::FrameRegion>,
    /// Echo of the trace id this request carried (0 = untraced).
    pub trace_id: u64,
}

/// A finished request trace fetched from the server's journal.
#[derive(Clone, Debug)]
pub struct TraceReply {
    /// Whether the journal still held the requested trace.
    pub found: bool,
    /// The trace's id (the one the request carried on the wire).
    pub id: u64,
    /// Total request wall time in microseconds.
    pub total_us: u64,
    /// Span events that overflowed the trace's bounded buffer.
    pub dropped: u64,
    /// The recorded span events.
    pub events: Vec<TraceEvent>,
}

/// A failure the server reported in a structured error frame, preserved
/// with its protocol code (and, for `ERR_BUSY`, the retry hint) so callers
/// can dispatch on it: `err.get_ref()` downcasts to `ServerError`, or use
/// [`ServerError::from_io`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// The `ERR_*` protocol code.
    pub code: u16,
    /// Human-readable detail from the server.
    pub detail: String,
    /// The server's retry-after hint, when it sent one (`ERR_BUSY` on v3).
    pub retry_after_ms: Option<u32>,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server error {}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ServerError {}

impl ServerError {
    /// The typed server error inside `e`, if that is what `e` carries.
    pub fn from_io(e: &io::Error) -> Option<&ServerError> {
        e.get_ref().and_then(|inner| inner.downcast_ref())
    }
}

/// The minimum delay before any retry, whatever the server's hint or the
/// configured base backoff say. See [`Client::backoff_delay`].
const BACKOFF_FLOOR: Duration = Duration::from_millis(25);

/// Lift a server error frame into an `io::Error` carrying the typed code.
fn server_error(code: u16, detail: String, retry_after_ms: Option<u32>) -> io::Error {
    io::Error::other(ServerError {
        code,
        detail,
        retry_after_ms,
    })
}

fn unexpected(msg: &Message) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response type {}", msg.msg_type()),
    )
}

/// Can this request be safely sent twice? A torn connection leaves the
/// client unsure whether the server processed the request, so reconnect-
/// and-retry may duplicate it — only allowed when duplication is harmless.
/// Every current request is a pure read; anything else (including all
/// server-to-client types, which a client never retries anyway) is not.
fn idempotent(msg: &Message) -> bool {
    matches!(
        msg,
        Message::MeshRequest { .. }
            | Message::FrameRequest { .. }
            | Message::StatsRequest
            | Message::Ping { .. }
            | Message::MetricsRequest
            | Message::TraceRequest { .. }
    )
}

/// Did this error tear the connection (or leave it in an unknowable
/// mid-frame state)? These are the reconnect-and-retry errors.
fn torn(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WriteZero
            | io::ErrorKind::TimedOut
    )
}

/// Read one complete reply frame off the wire, undecoded: header +
/// payload + checksum, exactly as the server sent it.
fn read_raw_reply(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    use std::io::Read;
    let mut header = [0u8; crate::protocol::HEADER_BYTES];
    stream.read_exact(&mut header).map_err(map_timeout)?;
    let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut frame = header.to_vec();
    let rest = usize::try_from(len)
        .ok()
        .and_then(|n| n.checked_add(4))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "absurd frame length"))?;
    let mut body = vec![0u8; rest];
    stream.read_exact(&mut body).map_err(map_timeout)?;
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Socket-timeout expiry surfaces as `WouldBlock` on Unix; normalize to
/// `TimedOut` so callers see one deadline error kind.
fn map_timeout(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::WouldBlock {
        io::Error::new(io::ErrorKind::TimedOut, e)
    } else {
        e
    }
}

/// Client failure policy: deadlines and retry/backoff tuning.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Socket read/write deadline per request attempt; expiry surfaces as
    /// [`io::ErrorKind::TimedOut`]. `None` waits forever (the pre-v3
    /// behavior). Default 30 s.
    pub request_timeout: Option<Duration>,
    /// Extra attempts after the first, spent on `ERR_BUSY` replies and —
    /// for idempotent requests — torn connections. Default 0: fail fast,
    /// exactly like the pre-v3 client.
    pub retries: u32,
    /// Base backoff before the first retry; doubles each retry. Default
    /// 50 ms.
    pub backoff: Duration,
    /// Ceiling on the exponential backoff (a server `retry_after_ms` hint
    /// may still exceed it — the server knows better). Default 2 s.
    pub backoff_max: Duration,
    /// Seed for the deterministic backoff jitter. Two clients with
    /// different seeds desynchronize their retry storms; one seed always
    /// replays the same schedule.
    pub jitter_seed: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            request_timeout: Some(Duration::from_secs(30)),
            retries: 0,
            backoff: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

/// A blocking connection to an [`crate::IsoServer`].
pub struct Client {
    stream: TcpStream,
    /// The peer actually connected to — what reconnect dials.
    peer: SocketAddr,
    opts: ClientOptions,
    /// xorshift64* jitter state (seeded, deterministic).
    rng: u64,
}

impl Client {
    /// Connect to `addr` with the default (fail-fast, 30 s deadline)
    /// options.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, ClientOptions::default())
    }

    /// Connect to `addr` with an explicit failure policy.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: ClientOptions) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        let rng = opts.jitter_seed | 1; // xorshift must not start at 0
        let client = Client {
            stream,
            peer,
            opts,
            rng,
        };
        client.configure_stream()?;
        Ok(client)
    }

    fn configure_stream(&self) -> io::Result<()> {
        self.stream.set_nodelay(true)?;
        self.stream.set_read_timeout(self.opts.request_timeout)?;
        self.stream.set_write_timeout(self.opts.request_timeout)?;
        Ok(())
    }

    /// Tear down and redial the same peer (used after a torn connection).
    fn reconnect(&mut self) -> io::Result<()> {
        self.stream = TcpStream::connect(self.peer)?;
        self.configure_stream()
    }

    /// Next jitter draw in `[0, 1)` (xorshift64*, deterministic).
    fn jitter(&mut self) -> f64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Backoff before retry number `attempt` (0-based): exponential from
    /// `opts.backoff`, capped at `opts.backoff_max`, floored by the
    /// server's hint when present, then equal-jittered into
    /// `[base/2, base)` so synchronized clients spread out.
    ///
    /// Never below [`BACKOFF_FLOOR`]: a server whose hint EWMA reads 0 ms
    /// (or a pre-v3 server sending hintless `ERR_BUSY`, combined with
    /// `opts.backoff` configured to zero) must not spin the client into a
    /// hot retry loop against a peer that just declared itself overloaded.
    fn backoff_delay(&mut self, attempt: u32, hint_ms: Option<u32>) -> Duration {
        let exp = self
            .opts
            .backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.opts.backoff_max);
        let base = exp
            .max(Duration::from_millis(u64::from(hint_ms.unwrap_or(0))))
            .max(BACKOFF_FLOOR);
        base / 2 + Duration::from_secs_f64(base.as_secs_f64() / 2.0 * self.jitter())
    }

    /// One raw request/response exchange, no retry.
    fn exchange(&mut self, msg: &Message) -> io::Result<Message> {
        write_frame(&mut self.stream, msg).map_err(map_timeout)?;
        match read_frame(&mut self.stream).map_err(map_timeout)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(FrameIn::Ok { msg: reply, .. }) => Ok(reply),
            Some(FrameIn::Violation { code, detail, .. }) => Err(server_error(code, detail, None)),
        }
    }

    /// One request/response exchange under the retry policy: `ERR_BUSY`
    /// replies back off (honoring the server's hint) and retry; torn
    /// connections reconnect and retry, idempotent requests only. Non-busy
    /// error frames are returned as `Ok(Message::Error { .. })` for the
    /// caller to interpret — they are answers, not transport failures.
    fn roundtrip(&mut self, msg: &Message) -> io::Result<Message> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.exchange(msg);
            let retries_left = attempt < self.opts.retries;
            match outcome {
                Ok(Message::Error {
                    code: ERR_BUSY,
                    detail,
                    retry_after_ms,
                }) => {
                    if !retries_left {
                        return Err(server_error(ERR_BUSY, detail, retry_after_ms));
                    }
                    let delay = self.backoff_delay(attempt, retry_after_ms);
                    std::thread::sleep(delay);
                }
                Ok(reply) => return Ok(reply),
                Err(e) if torn(&e) && idempotent(msg) && retries_left => {
                    // the old stream may hold half a frame: always redial.
                    // A failed redial burns this attempt and is retried on
                    // the next one (the server may still be restarting).
                    std::thread::sleep(self.backoff_delay(attempt, None));
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
            attempt += 1;
        }
    }

    /// Query the isosurface at `iso`, optionally restricted to a region
    /// (full resolution — LOD level 0).
    pub fn query_mesh(&mut self, iso: f32, region: Option<Region>) -> io::Result<MeshReply> {
        self.query_mesh_lod(iso, region, 0)
    }

    /// Query LOD pyramid level `lod` of the isosurface at `iso` (0 = full
    /// resolution), optionally restricted to a region. Levels the server
    /// does not have come back as a structured `ERR_BAD_LOD` error. The
    /// server extracts with its default backend.
    pub fn query_mesh_lod(
        &mut self,
        iso: f32,
        region: Option<Region>,
        lod: u16,
    ) -> io::Result<MeshReply> {
        self.query(Message::MeshRequest {
            iso,
            region,
            lod,
            backend: None,
            trace_id: 0,
        })
    }

    /// [`Client::query_mesh_lod`] with an explicit extraction backend
    /// (protocol v4). A backend the server does not know comes back as a
    /// structured `ERR_BAD_BACKEND` error.
    pub fn query_mesh_backend(
        &mut self,
        iso: f32,
        region: Option<Region>,
        lod: u16,
        backend: Backend,
    ) -> io::Result<MeshReply> {
        self.query(Message::MeshRequest {
            iso,
            region,
            lod,
            backend: Some(backend.id()),
            trace_id: 0,
        })
    }

    /// [`Client::query_mesh_lod`] with a client-supplied trace id (protocol
    /// v5). The server records the request's span tree under `trace_id` in
    /// its trace journal and echoes the id on the reply; fetch the tree
    /// afterwards with [`Client::trace`]. Id 0 means untraced.
    pub fn query_mesh_traced(
        &mut self,
        iso: f32,
        region: Option<Region>,
        lod: u16,
        backend: Option<Backend>,
        trace_id: u64,
    ) -> io::Result<MeshReply> {
        self.query(Message::MeshRequest {
            iso,
            region,
            lod,
            backend: backend.map(|b| b.id()),
            trace_id,
        })
    }

    /// Query the isosurface at `iso` progressively (protocol v6): the
    /// server streams the LOD pyramid coarsest-first down to level `lod`,
    /// and `on_level` observes every reconstructed refinement as it
    /// arrives — render each one and the surface sharpens while the
    /// extraction finishes. Returns the final (finest delivered) level as
    /// a [`MeshReply`]; `degraded` is set when the server stopped coarser
    /// than requested under overload.
    ///
    /// No retry policy applies: once chunks have been delivered a replay
    /// could re-observe refinements, so `ERR_BUSY` and torn connections
    /// surface directly and the caller decides whether to re-issue.
    pub fn query_mesh_progressive(
        &mut self,
        iso: f32,
        lod: u16,
        backend: Option<Backend>,
        on_level: impl FnMut(&ProgressiveUpdate<'_>),
    ) -> io::Result<MeshReply> {
        write_frame(
            &mut self.stream,
            &Message::ProgressiveRequest {
                iso,
                lod,
                backend: backend.map(|b| b.id()),
                trace_id: 0,
            },
        )
        .map_err(map_timeout)?;
        read_progressive_reply(&mut self.stream, lod, on_level)
    }

    fn query(&mut self, request: Message) -> io::Result<MeshReply> {
        match self.roundtrip(&request)? {
            Message::MeshResponse {
                cache_hit,
                active_metacells,
                served_lod,
                degraded,
                backend,
                trace_id,
                mesh,
            } => Ok(MeshReply {
                mesh,
                cache_hit,
                active_metacells,
                served_lod,
                degraded,
                backend,
                trace_id,
            }),
            Message::Error {
                code,
                detail,
                retry_after_ms,
            } => Err(server_error(code, detail, retry_after_ms)),
            other => Err(unexpected(&other)),
        }
    }

    /// Query a rendered frame of the isosurface at `iso` and reassemble the
    /// tiles into one framebuffer.
    pub fn query_frame(&mut self, iso: f32, params: FrameParams) -> io::Result<FrameReply> {
        match self.roundtrip(&Message::FrameRequest {
            iso,
            params,
            trace_id: 0,
        })? {
            Message::FrameResponse {
                cache_hit,
                width,
                height,
                regions,
                trace_id,
            } => {
                let mut fb = Framebuffer::new(width as usize, height as usize);
                for r in &regions {
                    r.merge_into(&mut fb, (0, 0));
                }
                Ok(FrameReply {
                    framebuffer: fb,
                    cache_hit,
                    regions,
                    trace_id,
                })
            }
            Message::Error {
                code,
                detail,
                retry_after_ms,
            } => Err(server_error(code, detail, retry_after_ms)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> io::Result<ServerReport> {
        match self.roundtrip(&Message::StatsRequest)? {
            Message::StatsResponse(report) => Ok(report),
            Message::Error {
                code,
                detail,
                retry_after_ms,
            } => Err(server_error(code, detail, retry_after_ms)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's metrics registry exposition (Prometheus text
    /// format, protocol v5).
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.roundtrip(&Message::MetricsRequest)? {
            Message::MetricsResponse { text } => Ok(text),
            Message::Error {
                code,
                detail,
                retry_after_ms,
            } => Err(server_error(code, detail, retry_after_ms)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch a finished request trace from the server's journal (protocol
    /// v5). Id 0 asks for the most recent trace; `found` is false when the
    /// journal no longer holds the id.
    pub fn trace(&mut self, id: u64) -> io::Result<TraceReply> {
        match self.roundtrip(&Message::TraceRequest { id })? {
            Message::TraceResponse {
                found,
                id,
                total_us,
                dropped,
                events,
            } => Ok(TraceReply {
                found,
                id,
                total_us,
                dropped,
                events,
            }),
            Message::Error {
                code,
                detail,
                retry_after_ms,
            } => Err(server_error(code, detail, retry_after_ms)),
            other => Err(unexpected(&other)),
        }
    }

    /// Round-trip a payload of `bytes` zeros through the server's echo,
    /// returning the measured wall-clock (the calibration probe behind
    /// [`crate::measure_loopback`]).
    pub fn ping(&mut self, bytes: usize) -> io::Result<Duration> {
        let payload = vec![0u8; bytes];
        let t0 = Instant::now();
        match self.roundtrip(&Message::Ping {
            payload: payload.clone(),
        })? {
            Message::Pong { payload: echoed } => {
                if echoed != payload {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "pong payload differs from ping",
                    ));
                }
                Ok(t0.elapsed())
            }
            Message::Error {
                code,
                detail,
                retry_after_ms,
            } => Err(server_error(code, detail, retry_after_ms)),
            other => Err(unexpected(&other)),
        }
    }

    /// Write every request back-to-back on this connection, then read the
    /// replies — the pipelined exchange. The server guarantees replies
    /// come back **in request order**, so `replies[i]` answers
    /// `requests[i]`. No retry policy applies: a transport failure fails
    /// the whole batch, while per-request refusals (`ERR_BUSY`, bad
    /// parameters) come back as `Message::Error` entries in their slot.
    pub fn pipeline(&mut self, requests: &[Message]) -> io::Result<Vec<Message>> {
        for msg in requests {
            write_frame(&mut self.stream, msg).map_err(map_timeout)?;
        }
        let mut replies = Vec::with_capacity(requests.len());
        for _ in requests {
            match read_frame(&mut self.stream).map_err(map_timeout)? {
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-pipeline",
                    ))
                }
                Some(FrameIn::Ok { msg: reply, .. }) => replies.push(reply),
                Some(FrameIn::Violation { code, detail, .. }) => {
                    return Err(server_error(code, detail, None))
                }
            }
        }
        Ok(replies)
    }

    /// Like [`Client::pipeline`] but returning each reply's raw frame
    /// bytes (header + payload + checksum), undecoded — the hook for
    /// byte-level equivalence tests between serving cores.
    pub fn pipeline_raw(&mut self, requests: &[Message]) -> io::Result<Vec<Vec<u8>>> {
        for msg in requests {
            write_frame(&mut self.stream, msg).map_err(map_timeout)?;
        }
        let mut replies = Vec::with_capacity(requests.len());
        for _ in requests {
            replies.push(read_raw_reply(&mut self.stream)?);
        }
        Ok(replies)
    }

    /// Send a frame with explicit header fields and return the server's
    /// reply message — the hook the protocol-abuse tests (wrong magic,
    /// future version, corrupted checksum) drive the server with. Returns
    /// `Ok(None)` if the server hung up instead of replying. Never retried.
    pub fn roundtrip_raw(
        &mut self,
        magic: u32,
        version: u16,
        msg_type: u16,
        payload: &[u8],
        corrupt_checksum: bool,
    ) -> io::Result<Option<Message>> {
        let mut frame = encode_frame_raw(magic, version, msg_type, payload);
        if corrupt_checksum {
            let n = frame.len();
            frame[n - 1] ^= 0xFF;
        }
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        match read_frame(&mut self.stream) {
            Ok(None) => Ok(None),
            Ok(Some(FrameIn::Ok { msg: reply, .. })) => Ok(Some(reply)),
            Ok(Some(FrameIn::Violation { code, detail, .. })) => {
                Err(server_error(code, detail, None))
            }
            // a reset mid-read also counts as "hung up"
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => Ok(None),
            Err(e) => Err(map_timeout(e)),
        }
    }
}

/// Reassemble one progressive delivery from `r`: decode chunks until the
/// final one, apply deltas against the previous level, and hand every
/// reconstructed refinement to `on_level`. Factored off [`Client`] (and
/// public) so torn-stream tests can drive it from an in-memory reader.
///
/// The stream is validated as it is consumed — chunk levels must strictly
/// decrease (coarse→fine), a delta chunk needs a previous level and must
/// apply cleanly — and any tear, error frame, or violation surfaces as a
/// clean `Err` with no half-applied refinement ever reaching `on_level`.
pub fn read_progressive_reply<R: io::Read>(
    r: &mut R,
    want_lod: u16,
    mut on_level: impl FnMut(&ProgressiveUpdate<'_>),
) -> io::Result<MeshReply> {
    let mut prev: Option<(u16, IndexedMesh)> = None;
    loop {
        let frame = read_frame(r).map_err(map_timeout)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-progressive-delivery",
            )
        })?;
        let msg = match frame {
            FrameIn::Ok { msg, .. } => msg,
            FrameIn::Violation { code, detail, .. } => {
                return Err(server_error(code, detail, None))
            }
        };
        match msg {
            Message::MeshChunk {
                last,
                level,
                cache_hit,
                backend,
                active_metacells,
                trace_id,
                body,
            } => {
                if let Some((prev_level, _)) = &prev {
                    if level >= *prev_level {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("chunk level {level} after {prev_level}: must refine"),
                        ));
                    }
                }
                let delta = matches!(body, ChunkBody::Delta(_));
                let mesh = match body {
                    ChunkBody::Full(mesh) => mesh,
                    ChunkBody::Delta(d) => {
                        let Some((_, prev_mesh)) = &prev else {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "delta chunk with no previous level to apply it to",
                            ));
                        };
                        d.apply(prev_mesh).ok_or_else(|| {
                            io::Error::new(io::ErrorKind::InvalidData, "inconsistent delta chunk")
                        })?
                    }
                };
                on_level(&ProgressiveUpdate {
                    level,
                    cache_hit,
                    delta,
                    mesh: &mesh,
                });
                if last {
                    return Ok(MeshReply {
                        mesh,
                        cache_hit,
                        active_metacells,
                        served_lod: level,
                        // the server signals a degraded (overload-truncated)
                        // delivery by ending coarser than asked
                        degraded: level > want_lod,
                        backend,
                        trace_id,
                    });
                }
                prev = Some((level, mesh));
            }
            // a structured refusal (busy, bad lod) or a trailing
            // ERR_INTERNAL after an extraction failure mid-delivery
            Message::Error {
                code,
                detail,
                retry_after_ms,
            } => return Err(server_error(code, detail, retry_after_ms)),
            other => return Err(unexpected(&other)),
        }
    }
}
