//! Procedural Richtmyer–Meshkov instability proxy.
//!
//! The paper evaluates on the LLNL ASCI Richtmyer–Meshkov simulation: two
//! gases separated by a membrane, perturbed by superposed long/short
//! wavelength disturbances and a shock, developing bubbles and spikes that
//! merge and break up over 270 time steps (2048×2048×1920 one-byte voxels per
//! step, 2.1 TB total). That dataset is not redistributable at this scale, so
//! this module builds the closest synthetic equivalent:
//!
//! * a **mixing layer** between a low-density (≈0) and a high-density (≈255)
//!   gas, centered mid-domain;
//! * an interface displaced by a **multi-mode perturbation** whose amplitude
//!   grows with time (linear growth then saturation, the qualitative RM
//!   growth law);
//! * **bubble/spike asymmetry**: upward-moving bubbles broaden, spikes
//!   sharpen, via an asymmetric nonlinearity on the perturbation;
//! * **turbulent fine structure** from fractal value noise whose amplitude
//!   and frequency grow with time (transition toward a turbulent state);
//! * one-byte quantization and a `z`-shortened grid (x:y:z = 16:16:15, the
//!   2048:2048:1920 aspect), defaulting to 256×256×240 — the very size the
//!   paper itself uses for its down-sampled rendering demo (Figure 4).
//!
//! The proxy preserves what the evaluation depends on: a wide spread of
//! `(vmin, vmax)` metacell intervals, ~50% of metacells constant (far from the
//! mixing layer) so constant-metacell culling matters, monotone growth of
//! active cells with time, and isovalue-dependent surface sizes across the
//! 10…210 sweep.

use crate::grid::{Dims3, Volume};
use crate::noise;
use rayon::prelude::*;

/// Parameters of the Richtmyer–Meshkov proxy field.
#[derive(Clone, Copy, Debug)]
pub struct RmProxyParams {
    /// Random seed controlling mode phases and turbulence.
    pub seed: u64,
    /// Number of interface perturbation modes.
    pub modes: u32,
    /// Total number of simulated time steps (paper: 270).
    pub total_steps: u32,
    /// Mixing-layer half-thickness at t=0 (unit-cube units).
    pub base_thickness: f32,
    /// Perturbation amplitude at saturation (unit-cube units).
    pub max_amplitude: f32,
    /// Turbulence strength at the final step, in scalar units (0..255).
    pub turbulence: f32,
}

impl Default for RmProxyParams {
    fn default() -> Self {
        RmProxyParams {
            seed: 0x524D_2006, // "RM", 2006
            modes: 24,
            total_steps: 270,
            base_thickness: 0.02,
            max_amplitude: 0.18,
            turbulence: 90.0,
        }
    }
}

/// The Richtmyer–Meshkov proxy generator. Create once, then sample any time
/// step at any resolution; fields are deterministic in `(seed, step)`.
#[derive(Clone, Copy, Debug)]
pub struct RmProxy {
    params: RmProxyParams,
}

impl RmProxy {
    /// Proxy with the given parameters.
    pub fn new(params: RmProxyParams) -> Self {
        RmProxy { params }
    }

    /// Proxy with default parameters and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        RmProxy {
            params: RmProxyParams {
                seed,
                ..Default::default()
            },
        }
    }

    /// Generator parameters.
    pub fn params(&self) -> &RmProxyParams {
        &self.params
    }

    /// Normalized time in `[0, 1]` for a step index.
    fn tau(&self, step: u32) -> f32 {
        (step.min(self.params.total_steps) as f32) / self.params.total_steps as f32
    }

    /// Instability amplitude at normalized time `tau`: linear growth that
    /// saturates smoothly (qualitative RM growth law `a(t) ~ a0 + v0 t` then
    /// nonlinear saturation).
    fn amplitude(&self, tau: f32) -> f32 {
        self.params.max_amplitude * (1.0 - (-2.5 * tau).exp())
    }

    /// Evaluate the continuous proxy field at `(x, y, z) ∈ [0,1]³` for `step`.
    /// Output in `[0, 255]`.
    pub fn eval(&self, step: u32, x: f32, y: f32, z: f32) -> f32 {
        let p = &self.params;
        let tau = self.tau(step);
        let amp = self.amplitude(tau);

        // Interface displacement: multi-mode perturbation with bubble/spike
        // asymmetry (positive displacements broadened, negative sharpened).
        let raw = noise::multimode_perturbation(p.seed, x, y, p.modes);
        let asym = if raw >= 0.0 {
            raw.powf(0.8)
        } else {
            -(-raw).powf(1.6)
        };
        // Secondary shorter-wavelength modes appear as the instability grows.
        let raw2 = noise::multimode_perturbation(p.seed ^ 0xBEEF, x * 2.7, y * 2.7, p.modes);
        let interface = 0.5 + amp * (asym + 0.45 * tau * raw2);

        // Mixing-layer profile: smooth ramp from light gas (low values) below
        // to heavy gas (high values) above; thickness grows with time.
        let thick = p.base_thickness + 0.35 * amp;
        let s = ((z - interface) / thick).clamp(-1.0, 1.0);
        let profile = 0.5 + 0.5 * (s * std::f32::consts::FRAC_PI_2).sin();

        // Turbulent fine structure confined to the mixing region, growing in
        // both amplitude and frequency with time. The heavy-gas (high-value)
        // side is more turbulent than the light side — spikes of heavy gas
        // fragment while bubbles stay smooth — which is what makes the
        // paper's high isovalues produce markedly larger surfaces
        // (100M triangles at λ=10 up to 650M at λ=210).
        let mix_weight = (1.0 - s * s).max(0.0); // peaks at the interface
        let up = (s + 1.0) * 0.5; // 0 at light edge → 1 at heavy edge
        let side_skew = 0.05 + 0.95 * up * up; // strongly heavy-side biased
        let freq = 6.0 + 26.0 * tau;
        let turb = (noise::fbm(
            p.seed ^ 0x7452_4221,
            x * freq,
            y * freq,
            z * freq * (16.0 / 15.0),
            4,
        ) - 0.5)
            * 2.0;
        let turb_term = p.turbulence * tau.sqrt() * mix_weight * side_skew * turb;

        let base = (255.0 * profile + turb_term).clamp(0.0, 255.0);

        // Entrained light-gas bubbles inside the heavy fluid. A bubble whose
        // core dips to value m contributes isosurface area for *every*
        // isovalue above m, so the level-set area grows monotonically with
        // the isovalue — the mechanism behind the paper's 100M (λ=10) to
        // 650M (λ=210) triangle growth. Entrainment increases with time.
        base.min(self.bubble_field(x, y, z, tau, interface))
    }

    /// Lattice-hashed bubble field: the domain is cut into cells; each cell
    /// holds at most one spherical bubble (radius ≤ half a cell) of light gas
    /// with a hash-derived core value. Returns the bubble-imposed ceiling at
    /// the query point (`255` where no bubble reaches).
    fn bubble_field(&self, x: f32, y: f32, z: f32, tau: f32, interface: f32) -> f32 {
        const CELLS: f32 = 12.0;
        let p = &self.params;
        let (cx, cy, cz) = (
            (x * CELLS).floor() as i64,
            (y * CELLS).floor() as i64,
            (z * CELLS).floor() as i64,
        );
        let mut value = 255.0f32;
        for dz in -1..=1i64 {
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    let (ix, iy, iz) = (cx + dx, cy + dy, cz + dz);
                    let h = noise::splitmix64(
                        p.seed
                            ^ (ix as u64).wrapping_mul(0x9e37_79b9)
                            ^ (iy as u64).wrapping_mul(0x85eb_ca6b)
                            ^ (iz as u64).wrapping_mul(0xc2b2_ae35),
                    );
                    // bubble exists with probability growing over time
                    let exists = (h & 0xff) as f32 / 255.0;
                    if exists > 0.15 + 0.55 * tau {
                        continue;
                    }
                    // center within the cell, radius ≤ half a cell
                    let ox = ((h >> 8) & 0xff) as f32 / 255.0;
                    let oy = ((h >> 16) & 0xff) as f32 / 255.0;
                    let oz = ((h >> 24) & 0xff) as f32 / 255.0;
                    let bx = (ix as f32 + ox) / CELLS;
                    let by = (iy as f32 + oy) / CELLS;
                    let bz = (iz as f32 + oz) / CELLS;
                    // bubbles live in the heavy fluid above the interface
                    if bz < interface + 0.02 {
                        continue;
                    }
                    let r = (0.25 + 0.25 * (((h >> 32) & 0xff) as f32 / 255.0)) / CELLS;
                    let core = 10.0 + 200.0 * (((h >> 40) & 0xff) as f32 / 255.0);
                    let d2 = (x - bx) * (x - bx) + (y - by) * (y - by) + (z - bz) * (z - bz);
                    if d2 >= r * r {
                        continue;
                    }
                    let t = (d2.sqrt() / r).clamp(0.0, 1.0);
                    // smooth dip from 255 at the rim to `core` at the center
                    let dip = core + (255.0 - core) * (t * t * (3.0 - 2.0 * t));
                    value = value.min(dip);
                }
            }
        }
        value
    }

    /// Sample one time step onto a one-byte volume (the dataset's native
    /// precision), parallelized over z-slabs with rayon.
    pub fn volume(&self, step: u32, dims: Dims3) -> Volume<u8> {
        let sx = 1.0 / (dims.nx.max(2) - 1) as f32;
        let sy = 1.0 / (dims.ny.max(2) - 1) as f32;
        let sz = 1.0 / (dims.nz.max(2) - 1) as f32;
        let slab = dims.nx * dims.ny;
        let mut data = vec![0u8; dims.num_vertices()];
        data.par_chunks_mut(slab).enumerate().for_each(|(z, out)| {
            let zf = z as f32 * sz;
            for y in 0..dims.ny {
                let yf = y as f32 * sy;
                let row = &mut out[y * dims.nx..(y + 1) * dims.nx];
                for (x, v) in row.iter_mut().enumerate() {
                    *v = self.eval(step, x as f32 * sx, yf, zf).round() as u8;
                }
            }
        });
        Volume::from_vec(dims, data)
    }

    /// The default reproduction grid: 256×256×240 (paper's down-sampled demo
    /// size; the full dataset is 2048×2048×1920). `scale` multiplies every
    /// axis: `scale=1` → 256×256×240, `scale=2` → 512×512×480, …
    pub fn demo_dims(scale: usize) -> Dims3 {
        assert!(scale >= 1);
        Dims3::new(256 * scale, 256 * scale, 240 * scale)
    }

    /// A smaller grid for unit tests (64×64×60, same 16:16:15 aspect).
    pub fn test_dims() -> Dims3 {
        Dims3::new(64, 64, 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_step() {
        let a = RmProxy::with_seed(1).volume(100, Dims3::new(16, 16, 15));
        let b = RmProxy::with_seed(1).volume(100, Dims3::new(16, 16, 15));
        let c = RmProxy::with_seed(2).volume(100, Dims3::new(16, 16, 15));
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn field_in_byte_range_and_stratified() {
        let p = RmProxy::with_seed(3);
        let v = p.volume(200, Dims3::new(32, 32, 30));
        let (lo, hi) = v.min_max();
        assert!(lo < 30, "bottom should be light gas, lo={lo}");
        assert!(hi > 225, "top should be heavy gas, hi={hi}");
        // bottom slab mostly low, top slab mostly high
        let bottom_mean: f64 = (0..32 * 32).map(|i| v.data()[i] as f64).sum::<f64>() / 1024.0;
        let n = v.data().len();
        let top_mean: f64 = (n - 32 * 32..n).map(|i| v.data()[i] as f64).sum::<f64>() / 1024.0;
        assert!(bottom_mean < 40.0, "bottom mean {bottom_mean}");
        assert!(top_mean > 215.0, "top mean {top_mean}");
    }

    #[test]
    fn mixing_grows_with_time() {
        // Count "mixed" voxels (not saturated at either end); must grow
        // substantially from early to late steps.
        let p = RmProxy::with_seed(7);
        let dims = Dims3::new(48, 48, 45);
        let count_mixed = |step| {
            p.volume(step, dims)
                .data()
                .iter()
                .filter(|&&v| v > 20 && v < 235)
                .count()
        };
        let early = count_mixed(10);
        let late = count_mixed(250);
        assert!(
            late > early * 2,
            "mixing layer should grow: early={early} late={late}"
        );
    }

    #[test]
    fn amplitude_saturates() {
        let p = RmProxy::with_seed(1);
        let a1 = p.amplitude(0.1);
        let a5 = p.amplitude(0.5);
        let a10 = p.amplitude(1.0);
        assert!(a1 < a5 && a5 < a10);
        assert!(a10 <= p.params.max_amplitude);
        // saturation: late growth slower than early growth
        assert!(a10 - a5 < a5 - a1);
    }

    #[test]
    fn demo_dims_aspect() {
        let d = RmProxy::demo_dims(1);
        assert_eq!((d.nx, d.ny, d.nz), (256, 256, 240));
        let d2 = RmProxy::demo_dims(2);
        assert_eq!((d2.nx, d2.ny, d2.nz), (512, 512, 480));
    }
}
