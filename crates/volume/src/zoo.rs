//! Synthetic stand-ins for the paper's Table 1 datasets.
//!
//! Table 1 of the paper compares the sizes of the standard interval tree and
//! the compact interval tree on Bunny, MRBrain and CTHead (Stanford Volume
//! Data Archive) plus Pressure and Velocity fields. Those exact files are
//! external data we do not ship; instead each entry here generates a synthetic
//! volume with the *same dimensions and scalar precision* and qualitatively
//! similar value statistics:
//!
//! * CT/MR stand-ins: concentric anatomical shells + noise, producing a wide
//!   spread of metacell intervals over a modest number of distinct endpoint
//!   values (`n ≪ N` regime — where the compact tree wins asymptotically).
//! * Pressure/Velocity stand-ins: smooth float fields where almost every
//!   endpoint is distinct (`N ≈ n` regime — where the paper notes the compact
//!   tree still wins by a constant factor).
//!
//! The comparison the table makes (index entries and bytes of the two
//! structures) depends only on the interval statistics, which these proxies
//! reproduce at the matching dimensions.

use crate::field::{AnalyticField, FieldExt, NoiseField};
use crate::grid::{Dims3, Volume};
use crate::noise;
use crate::scalar::ScalarValue;

/// Scalar precision of a zoo dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZooPrecision {
    U8,
    U16,
    F32,
}

impl ZooPrecision {
    /// Bytes per sample.
    pub fn bytes(self) -> usize {
        match self {
            ZooPrecision::U8 => 1,
            ZooPrecision::U16 => 2,
            ZooPrecision::F32 => 4,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ZooPrecision::U8 => "u8",
            ZooPrecision::U16 => "u16",
            ZooPrecision::F32 => "f32",
        }
    }
}

/// One Table 1 dataset entry.
#[derive(Clone, Copy, Debug)]
pub struct ZooEntry {
    /// Dataset name as it appears in the paper.
    pub name: &'static str,
    /// Native dimensions of the original dataset.
    pub dims: Dims3,
    /// Scalar precision of the original dataset.
    pub precision: ZooPrecision,
    /// Seed for the synthetic stand-in.
    pub seed: u64,
}

/// The Table 1 dataset list. Dimensions follow the original archives:
/// Stanford Bunny CT 512×512×361, MRBrain 256×256×109, CTHead 256×256×113;
/// Pressure/Velocity are float simulation fields (vis-contest style, 256³).
pub fn table1_entries() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            name: "Bunny",
            dims: Dims3::new(512, 512, 361),
            precision: ZooPrecision::U16,
            seed: 0xB0_0001,
        },
        ZooEntry {
            name: "MRBrain",
            dims: Dims3::new(256, 256, 109),
            precision: ZooPrecision::U16,
            seed: 0xB0_0002,
        },
        ZooEntry {
            name: "CTHead",
            dims: Dims3::new(256, 256, 113),
            precision: ZooPrecision::U16,
            seed: 0xB0_0003,
        },
        ZooEntry {
            name: "Pressure",
            dims: Dims3::cube(256),
            precision: ZooPrecision::F32,
            seed: 0xB0_0004,
        },
        ZooEntry {
            name: "Velocity",
            dims: Dims3::cube(256),
            precision: ZooPrecision::F32,
            seed: 0xB0_0005,
        },
    ]
}

/// Anatomical phantom: nested ellipsoidal shells (skin / skull / brain /
/// ventricle analogue) plus fine noise, mimicking CT/MR value statistics.
#[derive(Clone, Copy, Debug)]
pub struct PhantomField {
    pub seed: u64,
    /// Peak scalar output (e.g. 255 for u8, ~3000 for 12-bit CT in u16).
    pub peak: f32,
}

impl AnalyticField for PhantomField {
    fn eval(&self, x: f32, y: f32, z: f32) -> f32 {
        // radial coordinate of a slightly squashed head-like ellipsoid
        let dx = (x - 0.5) / 0.42;
        let dy = (y - 0.5) / 0.36;
        let dz = (z - 0.5) / 0.45;
        let r = (dx * dx + dy * dy + dz * dz).sqrt();
        // shell profile: air outside, soft tissue, bone peak, brain interior
        let base = if r > 1.0 {
            0.02 // air + scanner noise floor
        } else if r > 0.92 {
            0.35 // skin/soft tissue
        } else if r > 0.80 {
            0.95 // skull (bright in CT)
        } else if r > 0.25 {
            0.45 // brain parenchyma
        } else {
            0.20 // ventricles
        };
        let tex = (noise::fbm(self.seed, x * 24.0, y * 24.0, z * 24.0, 3) - 0.5) * 0.08;
        ((base + tex).max(0.0)) * self.peak
    }
}

/// Generate the stand-in volume for a zoo entry, optionally down-scaled by an
/// integer factor (`shrink=1` keeps native size; `shrink=4` divides each axis
/// by 4 — useful to keep `table1` quick while preserving value statistics).
pub fn generate_u16(entry: &ZooEntry, shrink: usize) -> Volume<u16> {
    assert_eq!(entry.precision, ZooPrecision::U16);
    let dims = shrink_dims(entry.dims, shrink);
    PhantomField {
        seed: entry.seed,
        peak: 3500.0, // 12-bit-style CT range within u16
    }
    .sample(dims)
}

/// Generate a float stand-in (Pressure/Velocity style: smooth fBm field).
pub fn generate_f32(entry: &ZooEntry, shrink: usize) -> Volume<f32> {
    assert_eq!(entry.precision, ZooPrecision::F32);
    let dims = shrink_dims(entry.dims, shrink);
    NoiseField {
        seed: entry.seed,
        frequency: 5.0,
        octaves: 5,
        lo: -1.0,
        hi: 1.0,
    }
    .sample(dims)
}

fn shrink_dims(d: Dims3, shrink: usize) -> Dims3 {
    assert!(shrink >= 1);
    Dims3::new(
        (d.nx / shrink).max(9),
        (d.ny / shrink).max(9),
        (d.nz / shrink).max(9),
    )
}

/// Fraction of samples that are "interesting" (non-background) — a sanity
/// statistic used by tests to check the phantom is not trivially constant.
pub fn foreground_fraction<S: ScalarValue>(v: &Volume<S>, threshold: f32) -> f64 {
    let n = v.data().len();
    let fg = v.data().iter().filter(|s| s.to_f32() > threshold).count();
    fg as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_match_paper_datasets() {
        let names: Vec<_> = table1_entries().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec!["Bunny", "MRBrain", "CTHead", "Pressure", "Velocity"]
        );
    }

    #[test]
    fn phantom_has_structure() {
        let e = table1_entries()[1]; // MRBrain
        let v = generate_u16(&e, 8);
        let (lo, hi) = v.min_max();
        assert!(hi > lo, "phantom must be non-constant");
        let fg = foreground_fraction(&v, 100.0);
        assert!(fg > 0.1 && fg < 0.95, "foreground fraction {fg}");
    }

    #[test]
    fn float_fields_mostly_distinct() {
        let e = table1_entries()[3]; // Pressure
        let v = generate_f32(&e, 16);
        let mut keys: Vec<u32> = v.data().iter().map(|s| s.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        // the N≈n regime: the overwhelming majority of samples are distinct
        assert!(
            keys.len() * 2 > v.data().len(),
            "expected mostly-distinct floats: {} of {}",
            keys.len(),
            v.data().len()
        );
    }

    #[test]
    fn shrink_respects_minimum() {
        let d = shrink_dims(Dims3::new(512, 512, 361), 128);
        assert_eq!(d, Dims3::new(9, 9, 9));
    }
}
