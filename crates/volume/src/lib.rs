//! Volume data model and synthetic dataset generators for `oociso`.
//!
//! This crate provides the *data substrate* for the out-of-core isosurface
//! pipeline of Wang, JaJa and Varshney (IPDPS 2006):
//!
//! * [`Volume`] — an in-memory structured grid of scalar samples, generic over
//!   the scalar representation ([`ScalarValue`]: `u8`, `u16`, `f32`).
//! * [`field`] — analytic scalar fields (sphere, torus, gyroid, …) used as
//!   ground truth in tests.
//! * [`synthetic`] — a procedural *Richtmyer–Meshkov instability proxy*: a
//!   time-varying mixing-layer field that stands in for the 2.1 TB LLNL
//!   dataset used in the paper. It exercises the same code paths (one-byte
//!   scalars, 2048:1920 aspect grid, bubble/spike structures evolving over
//!   time steps) at laptop scale.
//! * [`zoo`] — synthetic stand-ins for the Table 1 datasets (Bunny, MRBrain,
//!   CTHead, Pressure, Velocity) with matching dimensions and precision.
//! * [`io`] — raw on-disk volume format with slab-streaming reads, so the
//!   preprocessing stage never needs the full volume in memory.
//! * [`stats`] — histograms and distinct-endpoint statistics that drive the
//!   index-size analysis.

pub mod field;
pub mod grid;
pub mod io;
pub mod noise;
pub mod scalar;
pub mod stats;
pub mod synthetic;
pub mod tetmesh;
pub mod zoo;

pub use field::{AnalyticField, FieldExt};
pub use grid::{Dims3, Volume};
pub use scalar::ScalarValue;
pub use synthetic::{RmProxy, RmProxyParams};
