//! Analytic scalar fields used as ground truth in tests and examples.
//!
//! Each field maps a point of the unit cube `[0,1]³` to a scalar; sampling a
//! field onto a [`Volume`] gives test datasets whose isosurfaces have known
//! geometry (e.g. a sphere of known area), which the integration tests use to
//! validate the whole extraction pipeline.

use crate::grid::{Dims3, Volume};
use crate::noise;
use crate::scalar::ScalarValue;

/// A continuous scalar field over the unit cube.
pub trait AnalyticField: Sync {
    /// Evaluate the field at `(x, y, z) ∈ [0,1]³`.
    fn eval(&self, x: f32, y: f32, z: f32) -> f32;
}

impl<F: Fn(f32, f32, f32) -> f32 + Sync> AnalyticField for F {
    fn eval(&self, x: f32, y: f32, z: f32) -> f32 {
        self(x, y, z)
    }
}

/// Signed distance to a sphere, remapped so the isovalue `level` sits on the
/// sphere of radius `radius` around `center` (in unit-cube coordinates).
///
/// Field value = `level + slope * (radius - dist)`: larger inside, smaller
/// outside, exactly `level` on the surface.
#[derive(Clone, Copy, Debug)]
pub struct SphereField {
    pub center: [f32; 3],
    pub radius: f32,
    pub level: f32,
    pub slope: f32,
}

impl SphereField {
    /// Sphere centered in the cube with the given radius; surface at `level`.
    pub fn centered(radius: f32, level: f32) -> Self {
        SphereField {
            center: [0.5, 0.5, 0.5],
            radius,
            level,
            slope: 200.0,
        }
    }
}

impl AnalyticField for SphereField {
    fn eval(&self, x: f32, y: f32, z: f32) -> f32 {
        let dx = x - self.center[0];
        let dy = y - self.center[1];
        let dz = z - self.center[2];
        let d = (dx * dx + dy * dy + dz * dz).sqrt();
        self.level + self.slope * (self.radius - d)
    }
}

/// Torus around the cube center in the `z = 0.5` plane. `major`/`minor` radii
/// in unit-cube units; surface sits at `level`.
#[derive(Clone, Copy, Debug)]
pub struct TorusField {
    pub major: f32,
    pub minor: f32,
    pub level: f32,
    pub slope: f32,
}

impl AnalyticField for TorusField {
    fn eval(&self, x: f32, y: f32, z: f32) -> f32 {
        let (cx, cy, cz) = (x - 0.5, y - 0.5, z - 0.5);
        let q = (cx * cx + cy * cy).sqrt() - self.major;
        let d = (q * q + cz * cz).sqrt();
        self.level + self.slope * (self.minor - d)
    }
}

/// Gyroid triply-periodic surface (`cells` periods across the cube) — a dense,
/// high-triangle-count field useful for stress tests.
#[derive(Clone, Copy, Debug)]
pub struct GyroidField {
    pub cells: f32,
    pub level: f32,
    pub amplitude: f32,
}

impl AnalyticField for GyroidField {
    fn eval(&self, x: f32, y: f32, z: f32) -> f32 {
        let k = std::f32::consts::TAU * self.cells;
        let (sx, cx) = (k * x).sin_cos();
        let (sy, cy) = (k * y).sin_cos();
        let (sz, cz) = (k * z).sin_cos();
        self.level + self.amplitude * (sx * cy + sy * cz + sz * cx)
    }
}

/// Fractal noise field (fBm), remapped to `[lo, hi]`.
#[derive(Clone, Copy, Debug)]
pub struct NoiseField {
    pub seed: u64,
    pub frequency: f32,
    pub octaves: u32,
    pub lo: f32,
    pub hi: f32,
}

impl AnalyticField for NoiseField {
    fn eval(&self, x: f32, y: f32, z: f32) -> f32 {
        let n = noise::fbm(
            self.seed,
            x * self.frequency,
            y * self.frequency,
            z * self.frequency,
            self.octaves,
        );
        self.lo + (self.hi - self.lo) * n
    }
}

/// Convenience sampling adapters for any [`AnalyticField`].
pub trait FieldExt: AnalyticField + Sized {
    /// Sample onto a grid, quantizing through [`ScalarValue::from_f32`].
    fn sample<S: ScalarValue>(&self, dims: Dims3) -> Volume<S> {
        let sx = 1.0 / (dims.nx.max(2) - 1) as f32;
        let sy = 1.0 / (dims.ny.max(2) - 1) as f32;
        let sz = 1.0 / (dims.nz.max(2) - 1) as f32;
        Volume::generate(dims, |x, y, z| {
            S::from_f32(self.eval(x as f32 * sx, y as f32 * sy, z as f32 * sz))
        })
    }
}

impl<F: AnalyticField + Sized> FieldExt for F {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_zero_on_surface() {
        let f = SphereField::centered(0.3, 100.0);
        let v = f.eval(0.8, 0.5, 0.5);
        assert!((v - 100.0).abs() < 1e-3);
        assert!(f.eval(0.5, 0.5, 0.5) > 100.0); // inside is larger
        assert!(f.eval(0.0, 0.0, 0.0) < 100.0); // corner is outside
    }

    #[test]
    fn torus_level_set() {
        let f = TorusField {
            major: 0.3,
            minor: 0.1,
            level: 50.0,
            slope: 100.0,
        };
        // point on the torus surface: 0.5 + major + minor along x
        let v = f.eval(0.5 + 0.4, 0.5, 0.5);
        assert!((v - 50.0).abs() < 1e-3);
    }

    #[test]
    fn gyroid_bounded() {
        let f = GyroidField {
            cells: 3.0,
            level: 128.0,
            amplitude: 60.0,
        };
        for i in 0..50 {
            let t = i as f32 / 50.0;
            let v = f.eval(t, 1.0 - t, 0.5 * t);
            assert!((128.0 - 180.1..=128.0 + 180.1).contains(&v));
        }
    }

    #[test]
    fn sample_quantizes() {
        let f = SphereField::centered(0.3, 128.0);
        let v: Volume<u8> = f.sample(Dims3::cube(16));
        let (lo, hi) = v.min_max();
        assert!(lo < 128 && hi > 128, "isovalue must be crossed: {lo} {hi}");
    }

    #[test]
    fn closure_is_a_field() {
        let f = |x: f32, _y: f32, _z: f32| x * 10.0;
        let v: Volume<u8> = f.sample(Dims3::cube(4));
        assert_eq!(v.get(3, 0, 0), 10);
    }

    #[test]
    fn noise_field_in_range() {
        let f = NoiseField {
            seed: 5,
            frequency: 4.0,
            octaves: 4,
            lo: 10.0,
            hi: 240.0,
        };
        let v: Volume<u8> = f.sample(Dims3::cube(8));
        let (lo, hi) = v.min_max();
        assert!(lo >= 10 && hi <= 240);
    }
}
