//! Value statistics: histograms and distinct endpoint counts.
//!
//! The paper's index-size analysis is driven by two quantities: `N`, the
//! number of metacell intervals, and `n`, the number of *distinct interval
//! endpoint values*. This module computes `n`-style statistics directly from
//! volumes and from endpoint key streams.

use crate::grid::Volume;
use crate::scalar::ScalarValue;

/// Count distinct sample values in a volume (exact, via sorted keys).
pub fn distinct_values<S: ScalarValue>(v: &Volume<S>) -> usize {
    let mut keys: Vec<u32> = v.data().iter().map(|s| s.key()).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.len()
}

/// A fixed-width histogram over scalar keys.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: u32,
    hi: u32,
    bins: Vec<u64>,
}

impl Histogram {
    /// Histogram of `bins` equal-width buckets over the key range `[lo, hi]`.
    pub fn new(lo: u32, hi: u32, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Histogram over a volume's full value range with `bins` buckets.
    pub fn of_volume<S: ScalarValue>(v: &Volume<S>, bins: usize) -> Self {
        let (lo, hi) = v.min_max();
        let (lo, hi) = (lo.key(), hi.key().max(lo.key() + 1));
        let mut h = Histogram::new(lo, hi, bins);
        for &s in v.data() {
            h.add(s.key());
        }
        h
    }

    /// Add one sample key.
    #[inline]
    pub fn add(&mut self, key: u32) {
        let k = key.clamp(self.lo, self.hi);
        let nbins = self.bins.len();
        let idx = ((k - self.lo) as u64 * nbins as u64 / (self.hi - self.lo + 1) as u64) as usize;
        self.bins[idx.min(nbins - 1)] += 1;
    }

    /// Bucket counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Fraction of mass in the bucket containing `key`.
    pub fn density_at(&self, key: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let k = key.clamp(self.lo, self.hi);
        let idx = ((k - self.lo) as u64 * self.bins.len() as u64 / (self.hi - self.lo + 1) as u64)
            as usize;
        self.bins[idx.min(self.bins.len() - 1)] as f64 / total as f64
    }
}

/// Summary statistics for a volume used in reports.
#[derive(Clone, Copy, Debug)]
pub struct VolumeSummary {
    pub num_vertices: usize,
    pub num_cells: usize,
    pub distinct_values: usize,
    pub min_key: u32,
    pub max_key: u32,
    pub raw_bytes: usize,
}

/// Compute a [`VolumeSummary`].
pub fn summarize<S: ScalarValue>(v: &Volume<S>) -> VolumeSummary {
    let (lo, hi) = v.min_max();
    VolumeSummary {
        num_vertices: v.dims().num_vertices(),
        num_cells: v.dims().num_cells(),
        distinct_values: distinct_values(v),
        min_key: lo.key(),
        max_key: hi.key(),
        raw_bytes: v.dims().raw_bytes::<S>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Dims3;

    #[test]
    fn distinct_counts() {
        let v = Volume::<u8>::generate(Dims3::cube(4), |x, _, _| (x % 3) as u8);
        assert_eq!(distinct_values(&v), 3);
        let c = Volume::<u8>::filled(Dims3::cube(4), 9);
        assert_eq!(distinct_values(&c), 1);
    }

    #[test]
    fn histogram_mass_conserved() {
        let v = Volume::<u8>::generate(Dims3::cube(8), |x, y, z| (x * y + z) as u8);
        let h = Histogram::of_volume(&v, 16);
        assert_eq!(h.total(), 512);
    }

    #[test]
    fn histogram_density() {
        let mut h = Histogram::new(0, 99, 10);
        for k in 0..100 {
            h.add(k);
        }
        // uniform: every bucket holds 10%
        assert!((h.density_at(5) - 0.1).abs() < 1e-9);
        assert!((h.density_at(95) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(10, 20, 2);
        h.add(0); // clamped into first bucket
        h.add(100); // clamped into last bucket
        assert_eq!(h.total(), 2);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 1);
    }

    #[test]
    fn summary_fields() {
        let v = Volume::<u16>::generate(Dims3::new(3, 3, 3), |x, y, z| (x + y + z) as u16);
        let s = summarize(&v);
        assert_eq!(s.num_vertices, 27);
        assert_eq!(s.num_cells, 8);
        assert_eq!(s.distinct_values, 7); // sums 0..=6
        assert_eq!(s.min_key, 0);
        assert_eq!(s.max_key, 6);
        assert_eq!(s.raw_bytes, 54);
    }
}
