//! Deterministic lattice value noise.
//!
//! The synthetic dataset generators need reproducible, seed-controlled,
//! reasonably cheap 3D noise. This module implements classic fractal value
//! noise over an integer lattice hashed with a SplitMix64-style mixer — no
//! external noise crate, fully deterministic across platforms.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash lattice point `(x, y, z)` under `seed` into `[0, 1)`.
#[inline]
fn lattice(seed: u64, x: i64, y: i64, z: i64) -> f32 {
    let h = splitmix64(
        seed ^ (x as u64).wrapping_mul(0x8da6_b343)
            ^ (y as u64).wrapping_mul(0xd816_3841)
            ^ (z as u64).wrapping_mul(0xcb1a_b31f),
    );
    // take the top 24 bits for an unbiased float in [0,1)
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Quintic smoothstep used by Perlin-style noise (C2-continuous).
#[inline]
fn fade(t: f32) -> f32 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Single-octave value noise at continuous point `(x, y, z)`, output in `[0, 1)`.
pub fn value_noise(seed: u64, x: f32, y: f32, z: f32) -> f32 {
    let (x0, y0, z0) = (x.floor(), y.floor(), z.floor());
    let (fx, fy, fz) = (fade(x - x0), fade(y - y0), fade(z - z0));
    let (xi, yi, zi) = (x0 as i64, y0 as i64, z0 as i64);
    let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
    let mut c = [0.0f32; 8];
    for (i, cv) in c.iter_mut().enumerate() {
        let dx = (i & 1) as i64;
        let dy = ((i >> 1) & 1) as i64;
        let dz = ((i >> 2) & 1) as i64;
        *cv = lattice(seed, xi + dx, yi + dy, zi + dz);
    }
    let c00 = lerp(c[0], c[1], fx);
    let c10 = lerp(c[2], c[3], fx);
    let c01 = lerp(c[4], c[5], fx);
    let c11 = lerp(c[6], c[7], fx);
    lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
}

/// Fractal (fBm) value noise: `octaves` octaves with per-octave gain 0.5 and
/// lacunarity 2.0. Output approximately in `[0, 1)`.
pub fn fbm(seed: u64, mut x: f32, mut y: f32, mut z: f32, octaves: u32) -> f32 {
    let mut amp = 0.5f32;
    let mut sum = 0.0f32;
    let mut norm = 0.0f32;
    for o in 0..octaves {
        sum += amp * value_noise(seed.wrapping_add(o as u64 * 0x9e37), x, y, z);
        norm += amp;
        amp *= 0.5;
        x *= 2.0;
        y *= 2.0;
        z *= 2.0;
    }
    if norm > 0.0 {
        sum / norm
    } else {
        0.0
    }
}

/// Periodic 2D multi-mode perturbation: a sum of `modes` sinusoids with
/// hash-derived wavevectors and phases. Models the "superposition of long
/// wavelength and short wavelength disturbances" that seeds the
/// Richtmyer–Meshkov instability. Output roughly in `[-1, 1]`.
pub fn multimode_perturbation(seed: u64, u: f32, v: f32, modes: u32) -> f32 {
    let mut sum = 0.0f32;
    let mut norm = 0.0f32;
    // Pre-mix the seed so that nearby integer seeds yield unrelated mode sets
    // (a raw `seed ^ (base + m)` would only permute the same inputs).
    let base = splitmix64(seed ^ 0xA5A5_5A5A_0000_1111);
    for m in 0..modes {
        let h = splitmix64(base.wrapping_add((m as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        // wavenumbers 1..=8 cycles across the unit square; low modes weighted more
        let kx = 1 + (h & 7) as i32;
        let ky = 1 + ((h >> 8) & 7) as i32;
        let phase = ((h >> 16) & 0xffff) as f32 / 65536.0 * std::f32::consts::TAU;
        let w = 1.0 / (kx * kx + ky * ky) as f32;
        sum += w * (std::f32::consts::TAU * (kx as f32 * u + ky as f32 * v) + phase).sin();
        norm += w;
    }
    if norm > 0.0 {
        sum / norm
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // avalanche sanity: flipping one input bit flips many output bits
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "poor mixing: {d} bits differ");
    }

    #[test]
    fn value_noise_in_unit_range() {
        for i in 0..500 {
            let f = i as f32 * 0.37;
            let n = value_noise(7, f, f * 0.5, f * 0.25);
            assert!((0.0..1.0).contains(&n), "out of range: {n}");
        }
    }

    #[test]
    fn value_noise_matches_lattice_at_integers() {
        let n1 = value_noise(9, 3.0, 4.0, 5.0);
        let n2 = value_noise(9, 3.0, 4.0, 5.0);
        assert_eq!(n1, n2);
        // continuity: nearby points have nearby values
        let a = value_noise(9, 3.0, 4.0, 5.0);
        let b = value_noise(9, 3.001, 4.0, 5.0);
        assert!((a - b).abs() < 0.01);
    }

    #[test]
    fn fbm_range_and_determinism() {
        let a = fbm(11, 1.5, 2.5, 3.5, 5);
        let b = fbm(11, 1.5, 2.5, 3.5, 5);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        assert_eq!(fbm(11, 1.0, 1.0, 1.0, 0), 0.0);
    }

    #[test]
    fn perturbation_bounded_and_seed_sensitive() {
        let mut distinct = false;
        for i in 0..100 {
            let u = i as f32 / 100.0;
            let p = multimode_perturbation(3, u, 0.5, 8);
            assert!(p.abs() <= 1.0 + 1e-5);
            if (multimode_perturbation(4, u, 0.5, 8) - p).abs() > 1e-6 {
                distinct = true;
            }
        }
        assert!(distinct, "different seeds should give different fields");
        assert_eq!(multimode_perturbation(3, 0.3, 0.3, 0), 0.0);
    }
}
