//! Scalar sample representations.
//!
//! The compact interval tree indexes metacell intervals by their endpoint
//! *values*. To work uniformly over one-byte, two-byte and float fields, every
//! scalar type provides a total order through an integer *key* ([`ScalarValue::key`])
//! and byte-level encoding for on-disk metacell records.

use std::fmt::Debug;

/// A scalar sample type usable as a volume voxel and as an interval endpoint.
///
/// Implementations must provide a *monotone* injective mapping to `u32` keys:
/// `a <= b` iff `a.key() <= b.key()`. The key space is what the indexing
/// structures sort and split on, which makes `f32` fields (where almost every
/// endpoint value is distinct, the `N ≈ n` regime of the paper's Table 1)
/// behave identically to quantized fields.
pub trait ScalarValue: Copy + PartialOrd + Debug + Send + Sync + 'static {
    /// Number of bytes of the on-disk encoding.
    const BYTES: usize;
    /// Human-readable name used in reports ("u8", "u16", "f32").
    const NAME: &'static str;

    /// Monotone injective key for ordering/indexing.
    fn key(self) -> u32;
    /// Inverse of [`ScalarValue::key`]; `from_key(x.key()) == x` for valid samples.
    fn from_key(key: u32) -> Self;
    /// Encode into `buf` (must be at least `BYTES` long).
    fn write_le(self, buf: &mut [u8]);
    /// Decode from `buf` (must be at least `BYTES` long).
    fn read_le(buf: &[u8]) -> Self;
    /// Convert to `f32` for interpolation and rendering.
    fn to_f32(self) -> f32;
    /// Quantize an `f32` into this representation (clamping).
    fn from_f32(v: f32) -> Self;

    /// Key to use for an isosurface query at real-valued isovalue `iso`.
    ///
    /// For integer representations this floors: comparisons `vmin_key ≤ k`
    /// and `vmax_key ≥ k` then select a *superset* of the truly active
    /// metacells and never miss one (see the query-key tests).
    fn query_key(iso: f32) -> u32 {
        Self::from_f32(iso).key()
    }

    /// Total-order minimum of two samples (NaN-free by construction).
    #[inline]
    fn min_s(self, other: Self) -> Self {
        if self.key() <= other.key() {
            self
        } else {
            other
        }
    }

    /// Total-order maximum of two samples.
    #[inline]
    fn max_s(self, other: Self) -> Self {
        if self.key() >= other.key() {
            self
        } else {
            other
        }
    }
}

impl ScalarValue for u8 {
    const BYTES: usize = 1;
    const NAME: &'static str = "u8";

    #[inline]
    fn key(self) -> u32 {
        self as u32
    }
    #[inline]
    fn from_key(key: u32) -> Self {
        key as u8
    }
    #[inline]
    fn write_le(self, buf: &mut [u8]) {
        buf[0] = self;
    }
    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        buf[0]
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn from_f32(v: f32) -> Self {
        v.clamp(0.0, 255.0).round() as u8
    }
    #[inline]
    fn query_key(iso: f32) -> u32 {
        if iso > 255.0 {
            // above every representable sample: no interval can be active
            // (keys live in u32, so 256 is a valid "impossible" key)
            256
        } else {
            iso.floor().max(0.0) as u32
        }
    }
}

impl ScalarValue for u16 {
    const BYTES: usize = 2;
    const NAME: &'static str = "u16";

    #[inline]
    fn key(self) -> u32 {
        self as u32
    }
    #[inline]
    fn from_key(key: u32) -> Self {
        key as u16
    }
    #[inline]
    fn write_le(self, buf: &mut [u8]) {
        buf[..2].copy_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        u16::from_le_bytes([buf[0], buf[1]])
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn from_f32(v: f32) -> Self {
        v.clamp(0.0, 65535.0).round() as u16
    }
    #[inline]
    fn query_key(iso: f32) -> u32 {
        if iso > 65535.0 {
            65536
        } else {
            iso.floor().max(0.0) as u32
        }
    }
}

impl ScalarValue for f32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";

    /// Monotone mapping of finite non-NaN floats onto `u32`: flip the sign bit
    /// for positives, complement for negatives (the classic radix-sortable
    /// float key). NaNs must not appear in volumes; generators never emit them.
    #[inline]
    fn key(self) -> u32 {
        let bits = self.to_bits();
        if bits & 0x8000_0000 != 0 {
            !bits
        } else {
            bits | 0x8000_0000
        }
    }
    #[inline]
    fn from_key(key: u32) -> Self {
        let bits = if key & 0x8000_0000 != 0 {
            key & 0x7fff_ffff
        } else {
            !key
        };
        f32::from_bits(bits)
    }
    #[inline]
    fn write_le(self, buf: &mut [u8]) {
        buf[..4].copy_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        f32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]])
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn from_f32(v: f32) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_key_roundtrip() {
        for v in 0..=255u8 {
            assert_eq!(u8::from_key(v.key()), v);
        }
    }

    #[test]
    fn u16_key_monotone() {
        let samples = [0u16, 1, 2, 100, 1000, 40000, 65535];
        for w in samples.windows(2) {
            assert!(w[0].key() < w[1].key());
            assert_eq!(u16::from_key(w[0].key()), w[0]);
        }
    }

    #[test]
    fn f32_key_monotone_across_sign() {
        let samples = [-1.0e9f32, -3.5, -0.0, 0.0, 1e-20, 3.5, 1.0e9];
        for w in samples.windows(2) {
            assert!(
                w[0].key() <= w[1].key(),
                "{} vs {} keys {} {}",
                w[0],
                w[1],
                w[0].key(),
                w[1].key()
            );
        }
    }

    #[test]
    fn f32_key_roundtrip() {
        for v in [-123.5f32, -1.0, 0.0, 0.25, 7.75, 3.4e38] {
            assert_eq!(f32::from_key(v.key()).to_bits(), v.to_bits());
        }
        // -0.0 and 0.0 have distinct keys but compare equal as floats.
        assert_ne!((-0.0f32).key(), (0.0f32).key());
    }

    #[test]
    fn min_max_s() {
        assert_eq!(3u8.min_s(7), 3);
        assert_eq!(3u8.max_s(7), 7);
        assert_eq!((-2.0f32).min_s(1.0), -2.0);
        assert_eq!((-2.0f32).max_s(1.0), 1.0);
    }

    #[test]
    fn encode_roundtrip() {
        let mut buf = [0u8; 4];
        200u8.write_le(&mut buf);
        assert_eq!(u8::read_le(&buf), 200);
        51234u16.write_le(&mut buf);
        assert_eq!(u16::read_le(&buf), 51234);
        (-17.25f32).write_le(&mut buf);
        assert_eq!(f32::read_le(&buf), -17.25);
    }

    #[test]
    fn from_f32_clamps() {
        assert_eq!(u8::from_f32(300.0), 255);
        assert_eq!(u8::from_f32(-5.0), 0);
        assert_eq!(u16::from_f32(1e9), 65535);
    }

    #[test]
    fn query_key_never_misses_active_intervals() {
        // for any real iso and any integer interval [vmin, vmax] that is
        // active (vmin ≤ iso ≤ vmax), the floored key must satisfy
        // vmin_key ≤ k ≤ ... i.e. vmin_key ≤ k and vmax_key ≥ k
        for iso10 in 0..2560 {
            let iso = iso10 as f32 / 10.0;
            let k = u8::query_key(iso);
            for vmin in 0..=255u8 {
                for vmax in [vmin, vmin.saturating_add(1), 255] {
                    let active = (vmin as f32) <= iso && iso <= (vmax as f32);
                    let selected = vmin.key() <= k && vmax.key() >= k;
                    if active {
                        assert!(selected, "iso={iso} [{vmin},{vmax}] missed");
                    }
                }
            }
        }
    }

    #[test]
    fn query_key_f32_exact() {
        assert_eq!(f32::query_key(1.5), 1.5f32.key());
        assert_eq!(f32::query_key(-3.25), (-3.25f32).key());
    }

    #[test]
    fn query_key_out_of_range_selects_nothing() {
        // above the representable range: the key exceeds every possible
        // vmax key, so no interval can satisfy vmax_key >= key
        assert!(u8::query_key(300.0) > 255u8.key());
        assert!(u16::query_key(1e9) > 65535u16.key());
    }
}
