//! Unstructured tetrahedral meshes.
//!
//! §4 of the paper: "Our algorithm can handle both structured and
//! unstructured grids and makes use of the metacell notion" — a metacell is
//! just "a cluster of neighboring cells" of roughly constant byte size. This
//! module provides the unstructured substrate: an explicit tetrahedral mesh
//! with per-vertex scalars, a clustering into fixed-size *tet clusters* (the
//! metacell analogue, with vertex data duplicated per cluster exactly as
//! structured metacells duplicate their boundary layers), per-cluster
//! `(vmin, vmax)` intervals for the compact interval tree, and a
//! self-contained on-disk record format.
//!
//! Meshes can be imported from any source; [`TetMesh::from_volume`] builds
//! one by Kuhn-tetrahedralizing a structured grid (6 tets per cell), which
//! gives tests an unstructured mesh with a known isosurface.

use crate::grid::Volume;
use crate::scalar::ScalarValue;

/// A vertex of the mesh: position and scalar value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TetVertex {
    pub pos: [f32; 3],
    pub value: f32,
}

/// An unstructured tetrahedral mesh with per-vertex scalars.
#[derive(Clone, Debug, Default)]
pub struct TetMesh {
    vertices: Vec<TetVertex>,
    /// Vertex indices, 4 per tetrahedron.
    tets: Vec<[u32; 4]>,
}

impl TetMesh {
    /// Build from explicit vertices and tetrahedra.
    pub fn new(vertices: Vec<TetVertex>, tets: Vec<[u32; 4]>) -> Self {
        let n = vertices.len() as u32;
        assert!(
            tets.iter().all(|t| t.iter().all(|&i| i < n)),
            "tet index out of range"
        );
        TetMesh { vertices, tets }
    }

    /// Kuhn-tetrahedralize a structured volume: 6 tets per hexahedral cell,
    /// consistently oriented so neighbouring cells share faces.
    pub fn from_volume<S: ScalarValue>(vol: &Volume<S>) -> Self {
        // The six tetrahedra around the 0-6 diagonal, in the Bourke corner
        // numbering used throughout the workspace.
        const CORNERS: [(usize, usize, usize); 8] = [
            (0, 0, 0),
            (1, 0, 0),
            (1, 1, 0),
            (0, 1, 0),
            (0, 0, 1),
            (1, 0, 1),
            (1, 1, 1),
            (0, 1, 1),
        ];
        const TETS: [[usize; 4]; 6] = [
            [0, 5, 1, 6],
            [0, 1, 2, 6],
            [0, 2, 3, 6],
            [0, 3, 7, 6],
            [0, 7, 4, 6],
            [0, 4, 5, 6],
        ];
        let dims = vol.dims();
        let mut vertices = Vec::with_capacity(dims.num_vertices());
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    vertices.push(TetVertex {
                        pos: [x as f32, y as f32, z as f32],
                        value: vol.get(x, y, z).to_f32(),
                    });
                }
            }
        }
        let mut tets = Vec::with_capacity(dims.num_cells() * 6);
        for cz in 0..dims.nz.saturating_sub(1) {
            for cy in 0..dims.ny.saturating_sub(1) {
                for cx in 0..dims.nx.saturating_sub(1) {
                    let corner = |i: usize| {
                        let (dx, dy, dz) = CORNERS[i];
                        dims.index(cx + dx, cy + dy, cz + dz) as u32
                    };
                    for t in &TETS {
                        tets.push([corner(t[0]), corner(t[1]), corner(t[2]), corner(t[3])]);
                    }
                }
            }
        }
        TetMesh { vertices, tets }
    }

    /// Number of tetrahedra.
    pub fn num_tets(&self) -> usize {
        self.tets.len()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Vertex accessor.
    pub fn vertex(&self, i: u32) -> TetVertex {
        self.vertices[i as usize]
    }

    /// Tet accessor.
    pub fn tet(&self, i: usize) -> [u32; 4] {
        self.tets[i]
    }

    /// Partition into clusters of at most `tets_per_cluster` consecutive
    /// tetrahedra — the unstructured metacell analogue. Consecutive tets of
    /// a Kuhn mesh are spatially local, so clusters behave like metacells
    /// (tight value intervals); meshes from other sources should be
    /// pre-sorted along a space-filling curve for the same effect.
    pub fn clusters(&self, tets_per_cluster: usize) -> Vec<TetCluster> {
        assert!(tets_per_cluster > 0);
        self.tets
            .chunks(tets_per_cluster)
            .enumerate()
            .map(|(id, chunk)| TetCluster::build(self, id as u32, chunk))
            .collect()
    }
}

/// A cluster of tetrahedra with duplicated vertex data: the unstructured
/// metacell. Self-contained — extraction needs no access to the full mesh.
#[derive(Clone, Debug, PartialEq)]
pub struct TetCluster {
    /// Cluster id (index in the cluster sequence).
    pub id: u32,
    /// The cluster's own vertex array.
    pub vertices: Vec<TetVertex>,
    /// Tets as indices into `vertices`.
    pub tets: Vec<[u32; 4]>,
}

impl TetCluster {
    fn build(mesh: &TetMesh, id: u32, tets: &[[u32; 4]]) -> Self {
        // remap global vertex ids to a dense local array
        let mut local_of = std::collections::HashMap::new();
        let mut vertices = Vec::new();
        let mut out_tets = Vec::with_capacity(tets.len());
        for tet in tets {
            let mut local = [0u32; 4];
            for (k, &g) in tet.iter().enumerate() {
                let next = vertices.len() as u32;
                let idx = *local_of.entry(g).or_insert_with(|| {
                    vertices.push(mesh.vertex(g));
                    next
                });
                local[k] = idx;
            }
            out_tets.push(local);
        }
        TetCluster {
            id,
            vertices,
            tets: out_tets,
        }
    }

    /// Scalar range over the cluster's vertices, as keys (for the interval
    /// index). Returns `None` for an empty cluster.
    pub fn value_interval(&self) -> Option<(u32, u32)> {
        let mut it = self.vertices.iter().map(|v| v.value.key());
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for k in it {
            lo = lo.min(k);
            hi = hi.max(k);
        }
        Some((lo, hi))
    }

    /// Whether all vertex values are equal (cullable, like constant metacells).
    pub fn is_constant(&self) -> bool {
        match self.value_interval() {
            Some((lo, hi)) => lo == hi,
            None => true,
        }
    }

    /// Encoded length: id (4) + vertex count (4) + tet count (4)
    /// + vertices × 16 + tets × 16.
    pub fn encoded_len(&self) -> usize {
        12 + self.vertices.len() * 16 + self.tets.len() * 16
    }

    /// Serialize to the on-disk record format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(self.vertices.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.tets.len() as u32).to_le_bytes());
        for v in &self.vertices {
            for c in v.pos {
                out.extend_from_slice(&c.to_le_bytes());
            }
            out.extend_from_slice(&v.value.to_le_bytes());
        }
        for t in &self.tets {
            for &i in t {
                out.extend_from_slice(&i.to_le_bytes());
            }
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Deserialize; returns the cluster and bytes consumed.
    pub fn decode(bytes: &[u8]) -> (Self, usize) {
        let rd32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let rdf = |at: usize| f32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let id = rd32(0);
        let nv = rd32(4) as usize;
        let nt = rd32(8) as usize;
        let mut at = 12;
        let mut vertices = Vec::with_capacity(nv);
        for _ in 0..nv {
            vertices.push(TetVertex {
                pos: [rdf(at), rdf(at + 4), rdf(at + 8)],
                value: rdf(at + 12),
            });
            at += 16;
        }
        let mut tets = Vec::with_capacity(nt);
        for _ in 0..nt {
            tets.push([rd32(at), rd32(at + 4), rd32(at + 8), rd32(at + 12)]);
            at += 16;
        }
        (TetCluster { id, vertices, tets }, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Dims3;

    fn small_mesh() -> TetMesh {
        let vol = Volume::<u8>::generate(Dims3::cube(4), |x, y, z| (x * 20 + y * 5 + z) as u8);
        TetMesh::from_volume(&vol)
    }

    #[test]
    fn kuhn_counts() {
        let mesh = small_mesh();
        assert_eq!(mesh.num_vertices(), 64);
        assert_eq!(mesh.num_tets(), 27 * 6);
    }

    #[test]
    fn tets_have_positive_volume() {
        let mesh = small_mesh();
        for i in 0..mesh.num_tets() {
            let t = mesh.tet(i);
            let p: Vec<[f32; 3]> = t.iter().map(|&v| mesh.vertex(v).pos).collect();
            let d = |a: [f32; 3], b: [f32; 3]| [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            let (u, v, w) = (d(p[0], p[1]), d(p[0], p[2]), d(p[0], p[3]));
            let det = u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
                + u[2] * (v[0] * w[1] - v[1] * w[0]);
            assert!(det.abs() > 1e-6, "degenerate tet {i}");
        }
        // six tets tile each unit cell: total volume equals cell count
        let total: f32 = (0..mesh.num_tets())
            .map(|i| {
                let t = mesh.tet(i);
                let p: Vec<[f32; 3]> = t.iter().map(|&v| mesh.vertex(v).pos).collect();
                let d = |a: [f32; 3], b: [f32; 3]| [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
                let (u, v, w) = (d(p[0], p[1]), d(p[0], p[2]), d(p[0], p[3]));
                (u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
                    + u[2] * (v[0] * w[1] - v[1] * w[0]))
                    .abs()
                    / 6.0
            })
            .sum();
        assert!((total - 27.0).abs() < 1e-3, "total volume {total}");
    }

    #[test]
    fn clusters_cover_all_tets_once() {
        let mesh = small_mesh();
        let clusters = mesh.clusters(16);
        let total: usize = clusters.iter().map(|c| c.tets.len()).sum();
        assert_eq!(total, mesh.num_tets());
        assert_eq!(clusters.len(), mesh.num_tets().div_ceil(16));
        // ids sequential
        for (i, c) in clusters.iter().enumerate() {
            assert_eq!(c.id, i as u32);
        }
    }

    #[test]
    fn cluster_intervals_bound_their_vertices() {
        let mesh = small_mesh();
        for c in mesh.clusters(10) {
            let (lo, hi) = c.value_interval().unwrap();
            for v in &c.vertices {
                assert!(v.value.key() >= lo && v.value.key() <= hi);
            }
        }
    }

    #[test]
    fn cluster_record_roundtrip() {
        let mesh = small_mesh();
        for c in mesh.clusters(7) {
            let bytes = c.encode();
            assert_eq!(bytes.len(), c.encoded_len());
            let (back, used) = TetCluster::decode(&bytes);
            assert_eq!(used, bytes.len());
            assert_eq!(back, c);
        }
    }

    #[test]
    fn constant_cluster_detected() {
        let vol = Volume::<u8>::filled(Dims3::cube(3), 99);
        let mesh = TetMesh::from_volume(&vol);
        for c in mesh.clusters(6) {
            assert!(c.is_constant());
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_rejected() {
        let _ = TetMesh::new(
            vec![TetVertex {
                pos: [0.0; 3],
                value: 0.0,
            }],
            vec![[0, 0, 0, 1]],
        );
    }
}
