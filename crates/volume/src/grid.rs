//! Structured grids of scalar samples.

use crate::scalar::ScalarValue;

/// Dimensions of a structured grid, in *vertices* (samples) per axis.
///
/// A grid of `nx × ny × nz` vertices contains `(nx-1) × (ny-1) × (nz-1)`
/// hexahedral cells. The Richtmyer–Meshkov dataset of the paper is
/// `2048 × 2048 × 1920` vertices per time step; its down-sampled demo version
/// (and our default reproduction size) is `256 × 256 × 240`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dims3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims3 {
    /// Create dimensions; every axis must hold at least one sample.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "dims must be positive");
        Dims3 { nx, ny, nz }
    }

    /// Cubic dimensions `n × n × n`.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Total number of cells (zero along degenerate axes).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx.saturating_sub(1) * self.ny.saturating_sub(1) * self.nz.saturating_sub(1)
    }

    /// Linear index of vertex `(x, y, z)`; x fastest, z slowest (paper's raw layout).
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z * self.ny + y) * self.nx + x
    }

    /// Inverse of [`Dims3::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// Whether `(x, y, z)` addresses a valid vertex.
    #[inline]
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x < self.nx && y < self.ny && z < self.nz
    }

    /// Size in bytes of a raw dump with scalar type `S`.
    pub fn raw_bytes<S: ScalarValue>(&self) -> usize {
        self.num_vertices() * S::BYTES
    }
}

/// An in-memory structured grid of scalar samples.
///
/// `Volume` is the unit the synthetic generators produce and the preprocessing
/// stage consumes (slab by slab for out-of-core operation, see
/// [`crate::io::RawVolumeReader`]).
#[derive(Clone, Debug)]
pub struct Volume<S: ScalarValue> {
    dims: Dims3,
    data: Vec<S>,
}

impl<S: ScalarValue> Volume<S> {
    /// Build a volume from raw samples; `data.len()` must equal the vertex count.
    pub fn from_vec(dims: Dims3, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            dims.num_vertices(),
            "sample count must match dims"
        );
        Volume { dims, data }
    }

    /// A volume filled with a constant value.
    pub fn filled(dims: Dims3, value: S) -> Self {
        Volume {
            dims,
            data: vec![value; dims.num_vertices()],
        }
    }

    /// Sample the closure at every vertex (x fastest).
    pub fn generate(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(dims.num_vertices());
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        Volume { dims, data }
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Borrow the underlying samples (x fastest, z slowest).
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable access to the underlying samples.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consume into the raw sample vector.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Sample at `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> S {
        self.data[self.dims.index(x, y, z)]
    }

    /// Overwrite the sample at `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: S) {
        let i = self.dims.index(x, y, z);
        self.data[i] = v;
    }

    /// Minimum and maximum sample of the whole volume.
    pub fn min_max(&self) -> (S, S) {
        let mut lo = self.data[0];
        let mut hi = self.data[0];
        for &v in &self.data[1..] {
            lo = lo.min_s(v);
            hi = hi.max_s(v);
        }
        (lo, hi)
    }

    /// Copy the axis-aligned box of vertices `[x0, x1) × [y0, y1) × [z0, z1)`
    /// into a new dense volume. Used to cut metacell payloads.
    pub fn extract_box(
        &self,
        (x0, y0, z0): (usize, usize, usize),
        (x1, y1, z1): (usize, usize, usize),
    ) -> Volume<S> {
        assert!(x0 < x1 && y0 < y1 && z0 < z1, "box must be non-empty");
        assert!(x1 <= self.dims.nx && y1 <= self.dims.ny && z1 <= self.dims.nz);
        let sub = Dims3::new(x1 - x0, y1 - y0, z1 - z0);
        let mut data = Vec::with_capacity(sub.num_vertices());
        for z in z0..z1 {
            for y in y0..y1 {
                let base = self.dims.index(x0, y, z);
                data.extend_from_slice(&self.data[base..base + (x1 - x0)]);
            }
        }
        Volume { dims: sub, data }
    }

    /// Trilinear interpolation at continuous coordinates (vertex units).
    /// Coordinates are clamped to the grid.
    pub fn sample_trilinear(&self, x: f32, y: f32, z: f32) -> f32 {
        let cx = x.clamp(0.0, (self.dims.nx - 1) as f32);
        let cy = y.clamp(0.0, (self.dims.ny - 1) as f32);
        let cz = z.clamp(0.0, (self.dims.nz - 1) as f32);
        let (x0, y0, z0) = (
            cx.floor() as usize,
            cy.floor() as usize,
            cz.floor() as usize,
        );
        let x1 = (x0 + 1).min(self.dims.nx - 1);
        let y1 = (y0 + 1).min(self.dims.ny - 1);
        let z1 = (z0 + 1).min(self.dims.nz - 1);
        let (fx, fy, fz) = (cx - x0 as f32, cy - y0 as f32, cz - z0 as f32);
        let v = |x: usize, y: usize, z: usize| self.get(x, y, z).to_f32();
        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        let c00 = lerp(v(x0, y0, z0), v(x1, y0, z0), fx);
        let c10 = lerp(v(x0, y1, z0), v(x1, y1, z0), fx);
        let c01 = lerp(v(x0, y0, z1), v(x1, y0, z1), fx);
        let c11 = lerp(v(x0, y1, z1), v(x1, y1, z1), fx);
        lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
    }

    /// Down-sample by integer `factor` along each axis (point sampling).
    pub fn downsample(&self, factor: usize) -> Volume<S> {
        assert!(factor >= 1);
        let nd = Dims3::new(
            self.dims.nx.div_ceil(factor),
            self.dims.ny.div_ceil(factor),
            self.dims.nz.div_ceil(factor),
        );
        Volume::generate(nd, |x, y, z| {
            self.get(
                (x * factor).min(self.dims.nx - 1),
                (y * factor).min(self.dims.ny - 1),
                (z * factor).min(self.dims.nz - 1),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_counts() {
        let d = Dims3::new(4, 3, 2);
        assert_eq!(d.num_vertices(), 24);
        assert_eq!(d.num_cells(), (3 * 2));
        assert_eq!(Dims3::cube(5).num_cells(), 64);
    }

    #[test]
    fn dims_index_roundtrip() {
        let d = Dims3::new(7, 5, 3);
        for z in 0..3 {
            for y in 0..5 {
                for x in 0..7 {
                    assert_eq!(d.coords(d.index(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn raw_bytes_by_type() {
        let d = Dims3::cube(8);
        assert_eq!(d.raw_bytes::<u8>(), 512);
        assert_eq!(d.raw_bytes::<u16>(), 1024);
        assert_eq!(d.raw_bytes::<f32>(), 2048);
    }

    #[test]
    fn generate_and_get() {
        let v = Volume::<u8>::generate(Dims3::new(3, 3, 3), |x, y, z| (x + 10 * y + 100 * z) as u8);
        assert_eq!(v.get(2, 1, 0), 12);
        assert_eq!(v.get(0, 0, 2), 200);
    }

    #[test]
    fn min_max() {
        let v = Volume::<u16>::generate(Dims3::cube(4), |x, y, z| (x * y * z) as u16 + 3);
        assert_eq!(v.min_max(), (3, 30));
    }

    #[test]
    fn extract_box_matches() {
        let v = Volume::<u8>::generate(Dims3::new(8, 8, 8), |x, y, z| (x ^ y ^ z) as u8);
        let b = v.extract_box((2, 3, 4), (6, 7, 8));
        assert_eq!(b.dims(), Dims3::new(4, 4, 4));
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    assert_eq!(b.get(x, y, z), v.get(x + 2, y + 3, z + 4));
                }
            }
        }
    }

    #[test]
    fn trilinear_at_vertices_and_centers() {
        let v = Volume::<u8>::generate(Dims3::cube(3), |x, _, _| (x * 10) as u8);
        assert_eq!(v.sample_trilinear(1.0, 1.0, 1.0), 10.0);
        assert_eq!(v.sample_trilinear(0.5, 0.0, 0.0), 5.0);
        // clamping outside the grid
        assert_eq!(v.sample_trilinear(-5.0, 0.0, 0.0), 0.0);
        assert_eq!(v.sample_trilinear(99.0, 0.0, 0.0), 20.0);
    }

    #[test]
    fn downsample_dims() {
        let v = Volume::<u8>::filled(Dims3::new(9, 9, 5), 7);
        let d = v.downsample(2);
        assert_eq!(d.dims(), Dims3::new(5, 5, 3));
        assert!(d.data().iter().all(|&s| s == 7));
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_len_panics() {
        let _ = Volume::<u8>::from_vec(Dims3::cube(2), vec![0; 7]);
    }
}
