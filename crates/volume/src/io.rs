//! Raw on-disk volume format with slab streaming.
//!
//! Out-of-core preprocessing must never materialize a full time step in
//! memory. The raw format here is a 32-byte header followed by samples in
//! x-fastest order; [`RawVolumeReader`] streams z-slabs of configurable
//! height, which is exactly what the metacell builder consumes (slabs of
//! `k` vertex layers with `1`-layer overlap).

use crate::grid::{Dims3, Volume};
use crate::scalar::ScalarValue;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"OOCISOV1";

/// Write a volume to `path` in the raw format.
pub fn write_volume<S: ScalarValue>(path: &Path, vol: &Volume<S>) -> io::Result<()> {
    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    write_header::<S>(&mut w, vol.dims())?;
    let mut buf = vec![0u8; 1 << 16];
    let mut used = 0;
    for &s in vol.data() {
        if used + S::BYTES > buf.len() {
            w.write_all(&buf[..used])?;
            used = 0;
        }
        s.write_le(&mut buf[used..used + S::BYTES]);
        used += S::BYTES;
    }
    w.write_all(&buf[..used])?;
    w.flush()
}

fn write_header<S: ScalarValue>(w: &mut impl Write, dims: Dims3) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(dims.nx as u64).to_le_bytes())?;
    w.write_all(&(dims.ny as u64).to_le_bytes())?;
    w.write_all(&(dims.nz as u64).to_le_bytes())?;
    w.write_all(&(S::BYTES as u32).to_le_bytes())?;
    w.write_all(&[0u8; 4])?; // reserved
    Ok(())
}

const HEADER_LEN: u64 = 8 + 8 * 3 + 4 + 4;

/// Read an entire volume from `path` (only for small volumes/tests; streaming
/// callers should use [`RawVolumeReader`]).
pub fn read_volume<S: ScalarValue>(path: &Path) -> io::Result<Volume<S>> {
    let mut r = RawVolumeReader::<S>::open(path)?;
    let dims = r.dims();
    let mut data = Vec::with_capacity(dims.num_vertices());
    let mut slab_start = 0;
    while slab_start < dims.nz {
        let take = 64.min(dims.nz - slab_start);
        let slab = r.read_slab(slab_start, take)?;
        data.extend_from_slice(slab.data());
        slab_start += take;
    }
    Ok(Volume::from_vec(dims, data))
}

/// Streaming reader over a raw volume file: random access to z-slabs.
pub struct RawVolumeReader<S: ScalarValue> {
    file: BufReader<File>,
    dims: Dims3,
    _marker: std::marker::PhantomData<S>,
}

impl<S: ScalarValue> RawVolumeReader<S> {
    /// Open and validate the header (magic, sample width).
    pub fn open(path: &Path) -> io::Result<Self> {
        let f = File::open(path)?;
        let mut r = BufReader::new(f);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let nx = u64::from_le_bytes(b8) as usize;
        r.read_exact(&mut b8)?;
        let ny = u64::from_le_bytes(b8) as usize;
        r.read_exact(&mut b8)?;
        let nz = u64::from_le_bytes(b8) as usize;
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let bytes = u32::from_le_bytes(b4) as usize;
        r.read_exact(&mut b4)?; // reserved
        if bytes != S::BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "sample width mismatch: file {bytes}, requested {}",
                    S::BYTES
                ),
            ));
        }
        Ok(RawVolumeReader {
            file: r,
            dims: Dims3::new(nx, ny, nz),
            _marker: std::marker::PhantomData,
        })
    }

    /// Grid dimensions from the header.
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Read `count` z-layers starting at layer `z0` into a dense sub-volume of
    /// dims `(nx, ny, count)`.
    pub fn read_slab(&mut self, z0: usize, count: usize) -> io::Result<Volume<S>> {
        assert!(z0 + count <= self.dims.nz, "slab out of range");
        let layer = self.dims.nx * self.dims.ny;
        let offset = HEADER_LEN + (z0 * layer * S::BYTES) as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let n = layer * count;
        let mut raw = vec![0u8; n * S::BYTES];
        self.file.read_exact(&mut raw)?;
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(S::read_le(&raw[i * S::BYTES..]));
        }
        Ok(Volume::from_vec(
            Dims3::new(self.dims.nx, self.dims.ny, count),
            data,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Dims3, Volume};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_volio_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_u8() {
        let v = Volume::<u8>::generate(Dims3::new(5, 4, 3), |x, y, z| (x + y * 7 + z * 31) as u8);
        let p = tmp("u8.vol");
        write_volume(&p, &v).unwrap();
        let r = read_volume::<u8>(&p).unwrap();
        assert_eq!(r.dims(), v.dims());
        assert_eq!(r.data(), v.data());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn roundtrip_f32() {
        let v = Volume::<f32>::generate(Dims3::cube(6), |x, y, z| {
            x as f32 * 0.5 - y as f32 + z as f32 * 2.25
        });
        let p = tmp("f32.vol");
        write_volume(&p, &v).unwrap();
        let r = read_volume::<f32>(&p).unwrap();
        assert_eq!(r.data(), v.data());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn slab_reads_match_full_volume() {
        let v = Volume::<u16>::generate(Dims3::new(6, 5, 9), |x, y, z| (x * y + z * 100) as u16);
        let p = tmp("slab.vol");
        write_volume(&p, &v).unwrap();
        let mut r = RawVolumeReader::<u16>::open(&p).unwrap();
        // read overlapping slabs out of order
        for (z0, cnt) in [(4usize, 3usize), (0, 2), (7, 2), (3, 5)] {
            let slab = r.read_slab(z0, cnt).unwrap();
            for z in 0..cnt {
                for y in 0..5 {
                    for x in 0..6 {
                        assert_eq!(slab.get(x, y, z), v.get(x, y, z0 + z));
                    }
                }
            }
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_scalar_width_rejected() {
        let v = Volume::<u8>::filled(Dims3::cube(4), 1);
        let p = tmp("w.vol");
        write_volume(&p, &v).unwrap();
        assert!(RawVolumeReader::<u16>::open(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("bad.vol");
        std::fs::write(&p, b"NOTAVOLUMEFILE__________________").unwrap();
        assert!(RawVolumeReader::<u8>::open(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
