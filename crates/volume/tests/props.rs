//! Property tests for volume generation, sampling and raw I/O.

use oociso_volume::io::{read_volume, write_volume, RawVolumeReader};
use oociso_volume::{Dims3, RmProxy, ScalarValue, Volume};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Dims3> {
    (2usize..20, 2usize..20, 2usize..16).prop_map(|(x, y, z)| Dims3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn raw_io_roundtrip_any_dims(dims in dims_strategy(), seed in any::<u64>()) {
        let vol = Volume::<u16>::generate(dims, |x, y, z| {
            (oociso_volume::noise::splitmix64(seed ^ ((x * 3 + y * 101 + z * 977) as u64))
                & 0xffff) as u16
        });
        let mut path = std::env::temp_dir();
        path.push(format!("oociso_vprop_{}_{}x{}x{}.vol",
            std::process::id(), dims.nx, dims.ny, dims.nz));
        write_volume(&path, &vol).unwrap();
        let back = read_volume::<u16>(&path).unwrap();
        prop_assert_eq!(back.dims(), vol.dims());
        prop_assert_eq!(back.data(), vol.data());

        // arbitrary slab reads agree with the full volume
        let mut r = RawVolumeReader::<u16>::open(&path).unwrap();
        let z0 = dims.nz / 3;
        let cnt = (dims.nz - z0).clamp(1, 4);
        let slab = r.read_slab(z0, cnt).unwrap();
        for z in 0..cnt {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    prop_assert_eq!(slab.get(x, y, z), vol.get(x, y, z0 + z));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rm_proxy_deterministic_and_stratified(seed in any::<u64>(), step in 0u32..270) {
        let dims = Dims3::new(12, 12, 11);
        let a = RmProxy::with_seed(seed).volume(step, dims);
        let b = RmProxy::with_seed(seed).volume(step, dims);
        prop_assert_eq!(a.data(), b.data());
        // bottom layer is lighter than the top layer on average
        let layer = dims.nx * dims.ny;
        let bottom: u64 = a.data()[..layer].iter().map(|&v| v as u64).sum();
        let top: u64 = a.data()[a.data().len() - layer..].iter().map(|&v| v as u64).sum();
        prop_assert!(top > bottom, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn trilinear_sampling_within_data_range(dims in dims_strategy(), seed in any::<u64>()) {
        let vol = Volume::<u8>::generate(dims, |x, y, z| {
            (oociso_volume::noise::splitmix64(seed ^ ((x + 7 * y + 61 * z) as u64)) & 0xff) as u8
        });
        let (lo, hi) = vol.min_max();
        for i in 0..20 {
            let t = i as f32 / 19.0;
            let v = vol.sample_trilinear(
                t * dims.nx as f32,
                (1.0 - t) * dims.ny as f32,
                t * dims.nz as f32,
            );
            prop_assert!(v >= lo.to_f32() - 1e-3 && v <= hi.to_f32() + 1e-3);
        }
    }

    #[test]
    fn min_max_agrees_with_scan(dims in dims_strategy(), seed in any::<u64>()) {
        let vol = Volume::<f32>::generate(dims, |x, y, z| {
            (oociso_volume::noise::splitmix64(seed ^ ((x + 13 * y + 377 * z) as u64)) % 1000) as f32
                - 500.0
        });
        let (lo, hi) = vol.min_max();
        let slo = vol.data().iter().fold(f32::INFINITY, |a, &b| a.min(b));
        let shi = vol.data().iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        prop_assert_eq!(lo, slo);
        prop_assert_eq!(hi, shi);
        prop_assert!(lo.key() <= hi.key());
    }
}
