//! Generated Marching Cubes case tables.
//!
//! Instead of transcribing the classic 256×16 triangle table, the table is
//! *derived* at first use from the cube's combinatorics:
//!
//! 1. For a sign configuration (bit `i` set ⇔ corner `i` is *inside*, i.e.
//!    `value < isovalue`), every cube face contributes directed surface
//!    segments between its intersected edges. Segments bound the inside
//!    region counter-clockwise as seen from outside the cube; on ambiguous
//!    faces (diagonal insides) the rule *separates the inside corners*. The
//!    rule depends only on the face's own sign pattern, so two cells sharing
//!    a face always produce identical segments there — the mesh is watertight
//!    across cells by construction.
//! 2. Each intersected cube edge is the start of exactly one segment and the
//!    end of exactly one, so segments form disjoint directed cycles; tracing
//!    them yields the configuration's oriented edge loops.
//!
//! The resulting per-configuration loops are functionally equivalent to the
//! classic Lorensen–Cline/Bourke table (same surface topology for all
//! unambiguous cases; the fixed separate-inside rule for ambiguous ones) and
//! validated by the invariants in this module's tests.

use std::sync::OnceLock;

/// Corner offsets within a cell, Bourke numbering: 0–3 on the `z` face
/// (x, y winding), 4–7 above them.
pub const CORNERS: [(usize, usize, usize); 8] = [
    (0, 0, 0),
    (1, 0, 0),
    (1, 1, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (1, 1, 1),
    (0, 1, 1),
];

/// The cube's 12 edges as corner pairs, Bourke numbering.
pub const EDGES: [(usize, usize); 12] = [
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 0),
    (4, 5),
    (5, 6),
    (6, 7),
    (7, 4),
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];

/// Axis of a cube edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeAxis {
    X,
    Y,
    Z,
}

/// Canonical description of one cube edge for edge-owned vertex generation:
/// the corner pair ordered so `lo` is the global-lexicographically lower
/// endpoint (the order [`crate::mc::marching_cubes`] interpolates in), the
/// axis the edge runs along, and `lo`'s offset within the cell. Derived from
/// [`EDGES`]/[`CORNERS`]; the unit tests re-derive and cross-check it.
#[derive(Clone, Copy, Debug)]
pub struct EdgeCanon {
    /// Corner index of the lexicographically lower endpoint.
    pub lo: u8,
    /// Corner index of the higher endpoint (`lo + 1` along `axis`).
    pub hi: u8,
    /// Axis the edge runs along.
    pub axis: EdgeAxis,
    /// Cell-local offset of the lower endpoint.
    pub base: (usize, usize, usize),
}

/// [`EdgeCanon`] for each of the 12 edges, in [`EDGES`] order.
pub const EDGE_CANON: [EdgeCanon; 12] = [
    EdgeCanon {
        lo: 0,
        hi: 1,
        axis: EdgeAxis::X,
        base: (0, 0, 0),
    },
    EdgeCanon {
        lo: 1,
        hi: 2,
        axis: EdgeAxis::Y,
        base: (1, 0, 0),
    },
    EdgeCanon {
        lo: 3,
        hi: 2,
        axis: EdgeAxis::X,
        base: (0, 1, 0),
    },
    EdgeCanon {
        lo: 0,
        hi: 3,
        axis: EdgeAxis::Y,
        base: (0, 0, 0),
    },
    EdgeCanon {
        lo: 4,
        hi: 5,
        axis: EdgeAxis::X,
        base: (0, 0, 1),
    },
    EdgeCanon {
        lo: 5,
        hi: 6,
        axis: EdgeAxis::Y,
        base: (1, 0, 1),
    },
    EdgeCanon {
        lo: 7,
        hi: 6,
        axis: EdgeAxis::X,
        base: (0, 1, 1),
    },
    EdgeCanon {
        lo: 4,
        hi: 7,
        axis: EdgeAxis::Y,
        base: (0, 0, 1),
    },
    EdgeCanon {
        lo: 0,
        hi: 4,
        axis: EdgeAxis::Z,
        base: (0, 0, 0),
    },
    EdgeCanon {
        lo: 1,
        hi: 5,
        axis: EdgeAxis::Z,
        base: (1, 0, 0),
    },
    EdgeCanon {
        lo: 2,
        hi: 6,
        axis: EdgeAxis::Z,
        base: (1, 1, 0),
    },
    EdgeCanon {
        lo: 3,
        hi: 7,
        axis: EdgeAxis::Z,
        base: (0, 1, 0),
    },
];

/// Face corner cycles (adjacent corners around each face) with outward
/// normals; cycles are re-oriented CCW-from-outside at table build time.
const FACE_CYCLES: [([usize; 4], [f32; 3]); 6] = [
    ([0, 3, 7, 4], [-1.0, 0.0, 0.0]), // x = 0
    ([1, 2, 6, 5], [1.0, 0.0, 0.0]),  // x = 1
    ([0, 1, 5, 4], [0.0, -1.0, 0.0]), // y = 0
    ([2, 3, 7, 6], [0.0, 1.0, 0.0]),  // y = 1
    ([0, 1, 2, 3], [0.0, 0.0, -1.0]), // z = 0
    ([4, 5, 6, 7], [0.0, 0.0, 1.0]),  // z = 1
];

/// The case table: for each of the 256 configurations, the oriented loops of
/// cube-edge indices the isosurface traces through the cell.
pub struct McTables {
    loops: Vec<Vec<Vec<u8>>>,
    /// Fan triangulation of `loops`, flattened to edge triples — the form the
    /// slab kernel consumes without pointer-chasing nested `Vec`s.
    tris: Vec<Vec<[u8; 3]>>,
    /// Bit `e` set ⇔ edge `e` is intersected in the configuration.
    edge_masks: [u16; 256],
}

impl McTables {
    /// The loops for a configuration.
    #[inline]
    pub fn loops(&self, config: u8) -> &[Vec<u8>] {
        &self.loops[config as usize]
    }

    /// Fan triangulation of the configuration's loops as edge-index triples,
    /// in the exact emission order of the reference kernel.
    #[inline]
    pub fn fan_triangles(&self, config: u8) -> &[[u8; 3]] {
        &self.tris[config as usize]
    }

    /// Bitmask of the edges the isosurface crosses in this configuration.
    #[inline]
    pub fn edge_mask(&self, config: u8) -> u16 {
        self.edge_masks[config as usize]
    }

    /// Triangle count the configuration will emit (fan triangulation).
    pub fn triangle_count(&self, config: u8) -> usize {
        self.tris[config as usize].len()
    }
}

/// Access the lazily generated global tables.
pub fn tables() -> &'static McTables {
    static TABLES: OnceLock<McTables> = OnceLock::new();
    TABLES.get_or_init(generate)
}

fn corner_pos(c: usize) -> [f32; 3] {
    let (x, y, z) = CORNERS[c];
    [x as f32, y as f32, z as f32]
}

/// Edge index for an unordered corner pair.
fn edge_between(a: usize, b: usize) -> u8 {
    for (i, &(p, q)) in EDGES.iter().enumerate() {
        if (p == a && q == b) || (p == b && q == a) {
            return i as u8;
        }
    }
    panic!("corners {a},{b} do not share an edge");
}

/// Re-orient a face cycle to be CCW when viewed from outside (along -normal).
fn ccw_cycle(cycle: [usize; 4], normal: [f32; 3]) -> [usize; 4] {
    let p0 = corner_pos(cycle[0]);
    let p1 = corner_pos(cycle[1]);
    let p2 = corner_pos(cycle[2]);
    let u = [p1[0] - p0[0], p1[1] - p0[1], p1[2] - p0[2]];
    let v = [p2[0] - p1[0], p2[1] - p1[1], p2[2] - p1[2]];
    let cross = [
        u[1] * v[2] - u[2] * v[1],
        u[2] * v[0] - u[0] * v[2],
        u[0] * v[1] - u[1] * v[0],
    ];
    let dot = cross[0] * normal[0] + cross[1] * normal[1] + cross[2] * normal[2];
    if dot > 0.0 {
        cycle
    } else {
        [cycle[0], cycle[3], cycle[2], cycle[1]]
    }
}

/// Generate the full table.
fn generate() -> McTables {
    // Pre-orient all faces.
    let faces: Vec<[usize; 4]> = FACE_CYCLES
        .iter()
        .map(|&(cycle, normal)| ccw_cycle(cycle, normal))
        .collect();

    let mut loops = Vec::with_capacity(256);
    let mut tris = Vec::with_capacity(256);
    let mut edge_masks = [0u16; 256];
    for config in 0..256u16 {
        let ls = loops_for(config as u8, &faces);
        let mut flat = Vec::new();
        let mut mask = 0u16;
        for l in &ls {
            for &e in l {
                mask |= 1 << e;
            }
            for w in l[1..].windows(2) {
                flat.push([l[0], w[0], w[1]]);
            }
        }
        edge_masks[config as usize] = mask;
        tris.push(flat);
        loops.push(ls);
    }
    McTables {
        loops,
        tris,
        edge_masks,
    }
}

/// Directed segments for one configuration: `next[edge] = edge` mapping.
fn loops_for(config: u8, faces: &[[usize; 4]]) -> Vec<Vec<u8>> {
    let inside = |c: usize| (config >> c) & 1 == 1;
    // next[from_edge] = to_edge
    let mut next: [Option<u8>; 12] = [None; 12];
    for cycle in faces {
        // maximal cyclic runs of inside corners
        let ins: Vec<bool> = cycle.iter().map(|&c| inside(c)).collect();
        let count = ins.iter().filter(|&&b| b).count();
        if count == 0 || count == 4 {
            continue;
        }
        for start in 0..4 {
            // a run starts at `start` if corner is inside and predecessor is not
            if ins[start] && !ins[(start + 3) % 4] {
                // walk to the end of the run
                let mut end = start;
                while ins[(end + 1) % 4] {
                    end = (end + 1) % 4;
                }
                let enter = edge_between(cycle[(start + 3) % 4], cycle[start]);
                let exit = edge_between(cycle[end], cycle[(end + 1) % 4]);
                // segment runs from the exit crossing back to the enter
                // crossing, closing the inside region CCW from outside
                debug_assert!(next[exit as usize].is_none());
                next[exit as usize] = Some(enter);
            }
        }
    }
    // trace directed cycles
    let mut visited = [false; 12];
    let mut result = Vec::new();
    for start in 0..12u8 {
        if visited[start as usize] || next[start as usize].is_none() {
            continue;
        }
        let mut cycle = Vec::new();
        let mut at = start;
        loop {
            visited[at as usize] = true;
            cycle.push(at);
            at = next[at as usize].expect("2-regular segment graph");
            if at == start {
                break;
            }
        }
        // Tracing follows the inside region's CCW boundary as seen from
        // outside the cube, which fan-triangulates with normals toward the
        // inside (< iso) side; reverse so normals point toward ≥ iso.
        cycle.reverse();
        result.push(cycle);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Edge is intersected iff its corners have different inside flags.
    fn intersected_edges(config: u8) -> Vec<u8> {
        let inside = |c: usize| (config >> c) & 1 == 1;
        EDGES
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| inside(a) != inside(b))
            .map(|(i, _)| i as u8)
            .collect()
    }

    #[test]
    fn empty_and_full_configs_have_no_loops() {
        let t = tables();
        assert!(t.loops(0).is_empty());
        assert!(t.loops(255).is_empty());
    }

    #[test]
    fn loops_cover_exactly_the_intersected_edges() {
        let t = tables();
        for config in 0..=255u8 {
            let mut covered: Vec<u8> = t
                .loops(config)
                .iter()
                .flat_map(|l| l.iter().copied())
                .collect();
            covered.sort_unstable();
            let mut expected = intersected_edges(config);
            expected.sort_unstable();
            assert_eq!(covered, expected, "config {config:#04x}");
        }
    }

    #[test]
    fn loops_have_at_least_three_edges() {
        let t = tables();
        for config in 0..=255u8 {
            for l in t.loops(config) {
                assert!(l.len() >= 3, "config {config:#04x}: loop {l:?}");
            }
        }
    }

    #[test]
    fn single_corner_cases_are_one_triangle() {
        let t = tables();
        for c in 0..8 {
            let config = 1u8 << c;
            assert_eq!(t.loops(config).len(), 1);
            assert_eq!(t.loops(config)[0].len(), 3);
            assert_eq!(t.triangle_count(config), 1);
        }
    }

    #[test]
    fn complementary_configs_same_edges_reversed_orientation() {
        let t = tables();
        for config in 0..=255u8 {
            let comp = !config;
            let mut a: Vec<u8> = t
                .loops(config)
                .iter()
                .flat_map(|l| l.iter().copied())
                .collect();
            let mut b: Vec<u8> = t
                .loops(comp)
                .iter()
                .flat_map(|l| l.iter().copied())
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "config {config:#04x} vs complement");
        }
    }

    /// The heart of watertightness: two adjacent cells share a face; the
    /// segments each cell's configuration induces on that face must coincide
    /// (as undirected edge pairs). We check all 256×(opposite-face pairings).
    #[test]
    fn shared_face_segments_agree() {
        // For the +x face of cell A and the -x face of cell B, corner
        // correspondence: A corners (1,2,6,5) ↔ B corners (0,3,7,4); edges
        // e1↔e3 (wait—match via corner pairs directly).
        // Build the face-segment sets directly from loops_for internals by
        // re-deriving them per face from the table loops: a loop step u→v is a
        // face segment of the unique face containing both edges.
        let t = tables();
        // map: for each config, set of (face_idx, unordered edge pair)
        let faces: Vec<[usize; 4]> = FACE_CYCLES
            .iter()
            .map(|&(cycle, normal)| ccw_cycle(cycle, normal))
            .collect();
        let face_edges: Vec<Vec<u8>> = faces
            .iter()
            .map(|cy| {
                (0..4)
                    .map(|i| edge_between(cy[i], cy[(i + 1) % 4]))
                    .collect()
            })
            .collect();
        let face_of_pair = |a: u8, b: u8| -> Option<usize> {
            face_edges
                .iter()
                .position(|fe| fe.contains(&a) && fe.contains(&b))
        };
        let segments_on_face = |config: u8, face: usize| -> Vec<(u8, u8)> {
            let mut out = Vec::new();
            for l in t.loops(config) {
                for i in 0..l.len() {
                    let u = l[i];
                    let v = l[(i + 1) % l.len()];
                    if let Some(f) = face_of_pair(u, v) {
                        if f == face {
                            out.push((u.min(v), u.max(v)));
                        }
                    }
                }
            }
            out.sort_unstable();
            out
        };
        // cell A's +x face (face index 1, corners 1,2,6,5) adjoins cell B's -x
        // face (face 0, corners 0,3,7,4) with correspondence 1→0, 2→3, 6→7, 5→4.
        // Edge correspondence: e1=(1,2)→(0,3)=e3, e10=(2,6)→(3,7)=e11,
        // e5=(5,6)→(4,7)=e7, e9=(1,5)→(0,4)=e8.
        let edge_map: [(u8, u8); 4] = [(1, 3), (10, 11), (5, 7), (9, 8)];
        let map_edge = |e: u8| -> u8 {
            edge_map
                .iter()
                .find(|&&(a, _)| a == e)
                .map(|&(_, b)| b)
                .unwrap()
        };
        for config_a in 0..=255u8 {
            // B's corners 0,3,7,4 must match A's 1,2,6,5 inside flags; B's
            // other corners are free — but the face segments depend only on
            // the shared corners, so fix them to 0.
            let bit = |cfg: u8, c: usize| (cfg >> c) & 1;
            let config_b = bit(config_a, 1)
                | (bit(config_a, 2) << 3)
                | (bit(config_a, 6) << 7)
                | (bit(config_a, 5) << 4);
            let seg_a = segments_on_face(config_a, 1);
            let seg_b: Vec<(u8, u8)> = segments_on_face(config_b, 0);
            let mapped_a: Vec<(u8, u8)> = {
                let mut v: Vec<(u8, u8)> = seg_a
                    .iter()
                    .map(|&(u, w)| {
                        let (mu, mw) = (map_edge(u), map_edge(w));
                        (mu.min(mw), mu.max(mw))
                    })
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(mapped_a, seg_b, "config {config_a:#04x}");
        }
    }

    #[test]
    fn edge_canon_matches_corner_tables() {
        for (e, c) in EDGE_CANON.iter().enumerate() {
            let (p, q) = EDGES[e];
            // same unordered corner pair
            let mut want = [p, q];
            want.sort_unstable();
            let mut got = [c.lo as usize, c.hi as usize];
            got.sort_unstable();
            assert_eq!(got, want, "edge {e}");
            // lo is the global-lexicographic (z, y, x) lower endpoint
            let lex = |i: usize| (CORNERS[i].2, CORNERS[i].1, CORNERS[i].0);
            assert!(lex(c.lo as usize) < lex(c.hi as usize), "edge {e}");
            // base is lo's offset and hi is base + 1 along axis
            assert_eq!(CORNERS[c.lo as usize], c.base, "edge {e}");
            let (bx, by, bz) = c.base;
            let want_hi = match c.axis {
                EdgeAxis::X => (bx + 1, by, bz),
                EdgeAxis::Y => (bx, by + 1, bz),
                EdgeAxis::Z => (bx, by, bz + 1),
            };
            assert_eq!(CORNERS[c.hi as usize], want_hi, "edge {e}");
        }
    }

    #[test]
    fn fan_triangles_match_loops() {
        let t = tables();
        for config in 0..=255u8 {
            let mut want: Vec<[u8; 3]> = Vec::new();
            for l in t.loops(config) {
                for w in l[1..].windows(2) {
                    want.push([l[0], w[0], w[1]]);
                }
            }
            assert_eq!(t.fan_triangles(config), &want[..], "config {config:#04x}");
            assert_eq!(t.triangle_count(config), want.len());
        }
    }

    #[test]
    fn edge_masks_match_intersected_edges() {
        let t = tables();
        for config in 0..=255u8 {
            let mut want = 0u16;
            for e in intersected_edges(config) {
                want |= 1 << e;
            }
            assert_eq!(t.edge_mask(config), want, "config {config:#04x}");
        }
    }

    #[test]
    fn triangle_counts_bounded() {
        let t = tables();
        for config in 0..=255u8 {
            let n = t.triangle_count(config);
            assert!(n <= 10, "config {config:#04x}: {n} triangles");
        }
    }
}
