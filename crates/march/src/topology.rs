//! Mesh topology analysis: welding, components, Euler characteristic.
//!
//! Tools a downstream user needs to *verify* an extracted isosurface: weld
//! the triangle soup into an indexed mesh, count connected components,
//! classify boundary vs interior edges, and compute the Euler characteristic
//! (2 per sphere-like closed component). The test suites use these to check
//! whole-pipeline watertightness.

use crate::indexed::IndexedMesh;
use crate::mesh::{weld_key, TriangleSoup};
use std::collections::HashMap;

/// Summary topology report for a triangle soup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyReport {
    /// Welded (position-unique) vertices.
    pub vertices: usize,
    /// Distinct undirected edges.
    pub edges: usize,
    /// Non-degenerate triangles.
    pub faces: usize,
    /// Edges incident to an odd number of faces (surface boundary — zero for
    /// a closed surface).
    pub boundary_edges: usize,
    /// Edges incident to more than two faces (pinched/self-touching surface —
    /// zero for a manifold mesh).
    pub non_manifold_edges: usize,
    /// Connected components (by shared welded vertices).
    pub components: usize,
}

impl TopologyReport {
    /// Euler characteristic `V - E + F`.
    pub fn euler_characteristic(&self) -> i64 {
        self.vertices as i64 - self.edges as i64 + self.faces as i64
    }

    /// Whether every edge is matched (no surface boundary).
    pub fn is_closed(&self) -> bool {
        self.boundary_edges == 0
    }

    /// Whether the surface is a closed 2-manifold: every edge has exactly
    /// two incident faces. The invariant the welded extraction path must
    /// uphold for closed isosurfaces.
    pub fn is_closed_manifold(&self) -> bool {
        self.boundary_edges == 0 && self.non_manifold_edges == 0
    }
}

/// Union-find over dense indices.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Analyze a triangle soup: weld vertices, count edges/faces/components.
/// Degenerate (zero-area) triangles are ignored.
pub fn analyze(soup: &TriangleSoup) -> TopologyReport {
    let mut vert_id: HashMap<(i64, i64, i64), u32> = HashMap::new();
    let mut edge_count: HashMap<(u32, u32), u32> = HashMap::new();
    let mut faces = 0usize;
    let mut tri_ids: Vec<[u32; 3]> = Vec::new();
    for t in soup.triangles() {
        if t.is_degenerate() {
            continue;
        }
        faces += 1;
        let mut ids = [0u32; 3];
        for (k, &v) in t.v.iter().enumerate() {
            let next = vert_id.len() as u32;
            ids[k] = *vert_id.entry(weld_key(v)).or_insert(next);
        }
        for i in 0..3 {
            let (a, b) = (ids[i], ids[(i + 1) % 3]);
            let e = if a < b { (a, b) } else { (b, a) };
            if a != b {
                *edge_count.entry(e).or_insert(0) += 1;
            }
        }
        tri_ids.push(ids);
    }
    finish_report(vert_id.len(), &edge_count, faces, &tri_ids)
}

/// Shared core of the two mesh analyzers: walk non-degenerate triangles,
/// map each corner to a dense id through `resolve` (which assigns ids
/// lazily, so vertices that are unreferenced — or referenced only by
/// degenerate triangles — never count), and tally edges. `resolve` hands
/// out sequential ids from 0, so the vertex count is the largest id + 1.
fn analyze_mesh_resolved(
    mesh: &IndexedMesh,
    resolve: &mut dyn FnMut(usize) -> u32,
) -> TopologyReport {
    let mut edge_count: HashMap<(u32, u32), u32> = HashMap::new();
    let mut faces = 0usize;
    let mut tri_ids: Vec<[u32; 3]> = Vec::new();
    let mut num_ids = 0u32;
    for (i, tri) in mesh.indices().chunks_exact(3).enumerate() {
        if mesh.triangle(i).is_degenerate() {
            continue;
        }
        faces += 1;
        let mut ids = [0u32; 3];
        for (k, &pi) in tri.iter().enumerate() {
            let id = resolve(pi as usize);
            num_ids = num_ids.max(id + 1);
            ids[k] = id;
        }
        for j in 0..3 {
            let (a, b) = (ids[j], ids[(j + 1) % 3]);
            let e = if a < b { (a, b) } else { (b, a) };
            if a != b {
                *edge_count.entry(e).or_insert(0) += 1;
            }
        }
        tri_ids.push(ids);
    }
    finish_report(num_ids as usize, &edge_count, faces, &tri_ids)
}

/// [`analyze`] for an [`IndexedMesh`] — identical report (same [`weld_key`]
/// rule, same degenerate-triangle handling), but welding hashes each shared
/// position once instead of every triangle corner, so no 3×-larger soup ever
/// has to be materialized.
pub fn analyze_mesh(mesh: &IndexedMesh) -> TopologyReport {
    let keys: Vec<(i64, i64, i64)> = mesh.positions().iter().map(|&p| weld_key(p)).collect();
    let mut pos_id: Vec<u32> = vec![u32::MAX; keys.len()];
    let mut vert_id: HashMap<(i64, i64, i64), u32> = HashMap::new();
    analyze_mesh_resolved(mesh, &mut |pi| {
        if pos_id[pi] == u32::MAX {
            let next = vert_id.len() as u32;
            pos_id[pi] = *vert_id.entry(keys[pi]).or_insert(next);
        }
        pos_id[pi]
    })
}

/// Analyze an [`IndexedMesh`] by its **raw index connectivity** — no
/// position welding at all. This is the mesh as downstream index-based
/// algorithms (decimation, LOD, GPU upload) see it: a surface merged from
/// unwelded sub-meshes reports a boundary along every seam here even though
/// [`analyze_mesh`] (which welds by quantized position) calls it closed.
/// The welded extraction path's guarantee is precisely that this report and
/// [`analyze_mesh`]'s agree.
pub fn analyze_mesh_connectivity(mesh: &IndexedMesh) -> TopologyReport {
    let mut pos_id: Vec<u32> = vec![u32::MAX; mesh.num_vertices()];
    let mut next = 0u32;
    analyze_mesh_resolved(mesh, &mut |pi| {
        if pos_id[pi] == u32::MAX {
            pos_id[pi] = next;
            next += 1;
        }
        pos_id[pi]
    })
}

fn finish_report(
    vertices: usize,
    edge_count: &HashMap<(u32, u32), u32>,
    faces: usize,
    tri_ids: &[[u32; 3]],
) -> TopologyReport {
    let mut uf = UnionFind::new(vertices);
    for ids in tri_ids {
        uf.union(ids[0], ids[1]);
        uf.union(ids[1], ids[2]);
    }
    let mut roots = std::collections::HashSet::new();
    for v in 0..vertices as u32 {
        let r = uf.find(v);
        roots.insert(r);
    }
    TopologyReport {
        vertices,
        edges: edge_count.len(),
        faces,
        boundary_edges: edge_count.values().filter(|&&c| c % 2 == 1).count(),
        non_manifold_edges: edge_count.values().filter(|&&c| c > 2).count(),
        components: roots.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::marching_cubes;
    use crate::mesh::{Triangle, Vec3};
    use oociso_volume::field::{AnalyticField, FieldExt, SphereField, TorusField};
    use oociso_volume::{Dims3, Volume};

    fn extract(f: &impl AnalyticField, level: f32, n: usize) -> TriangleSoup {
        let vol: Volume<f32> = f.sample(Dims3::cube(n));
        let mut soup = TriangleSoup::new();
        marching_cubes(&vol, level, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        soup
    }

    #[test]
    fn sphere_topology() {
        let soup = extract(&SphereField::centered(0.3, 128.0), 128.0, 24);
        let r = analyze(&soup);
        assert!(r.is_closed());
        assert_eq!(r.components, 1);
        assert_eq!(r.euler_characteristic(), 2, "{r:?}");
    }

    #[test]
    fn torus_topology() {
        let f = TorusField {
            major: 0.3,
            minor: 0.1,
            level: 128.0,
            slope: 400.0,
        };
        let soup = extract(&f, 128.0, 40);
        let r = analyze(&soup);
        assert!(r.is_closed());
        assert_eq!(r.components, 1);
        assert_eq!(r.euler_characteristic(), 0, "genus-1: {r:?}");
    }

    #[test]
    fn two_spheres_two_components() {
        let f = |x: f32, y: f32, z: f32| {
            let a = SphereField {
                center: [0.28, 0.5, 0.5],
                radius: 0.15,
                level: 128.0,
                slope: 400.0,
            };
            let b = SphereField {
                center: [0.72, 0.5, 0.5],
                radius: 0.15,
                level: 128.0,
                slope: 400.0,
            };
            a.eval(x, y, z).max(b.eval(x, y, z))
        };
        let soup = extract(&f, 128.0, 32);
        let r = analyze(&soup);
        assert_eq!(r.components, 2, "{r:?}");
        assert!(r.is_closed());
        assert_eq!(r.euler_characteristic(), 4, "two spheres: {r:?}");
    }

    #[test]
    fn open_surface_has_boundary() {
        // a plane through the volume exits at the sides: boundary edges > 0
        let f = |_x: f32, _y: f32, z: f32| z * 255.0;
        let soup = extract(&f, 128.0, 12);
        let r = analyze(&soup);
        assert!(!r.is_closed());
        assert!(r.boundary_edges > 0);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn degenerate_triangles_ignored() {
        let mut soup = TriangleSoup::new();
        soup.push(Triangle {
            v: [Vec3::ZERO, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)],
        });
        let r = analyze(&soup);
        assert_eq!(r.faces, 0);
        assert_eq!(r.vertices, 0);
    }

    #[test]
    fn empty_soup() {
        let r = analyze(&TriangleSoup::new());
        assert_eq!(r.vertices, 0);
        assert_eq!(r.components, 0);
        assert!(r.is_closed());
    }

    #[test]
    fn analyze_mesh_matches_analyze_on_soup() {
        use crate::mc::{marching_cubes_indexed, SlabScratch};

        let f = TorusField {
            major: 0.3,
            minor: 0.1,
            level: 128.0,
            slope: 400.0,
        };
        let vol: Volume<f32> = f.sample(Dims3::cube(28));
        let mut mesh = IndexedMesh::new();
        let mut scratch = SlabScratch::new();
        marching_cubes_indexed(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mesh,
            &mut scratch,
        );
        assert!(!mesh.is_empty());
        assert_eq!(analyze_mesh(&mesh), analyze(&mesh.to_soup()));
    }

    #[test]
    fn duplicated_vertex_seam_counts_boundary_edges_correctly() {
        // Two triangles sharing an edge, built the way `IndexedMesh::merge`
        // concatenates sub-meshes: the shared edge's endpoints are duplicated
        // vertex entries. Edge counting must run on *welded* ids, or the
        // shared edge reads as two boundary half-edges and the quad's true
        // boundary is overcounted.
        let mut quad = IndexedMesh::new();
        let a = quad.push_vertex(Vec3::ZERO);
        let b = quad.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let c = quad.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        quad.push_triangle(a, b, c);
        // second triangle duplicates b and c instead of referencing them
        let b2 = quad.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let c2 = quad.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        let d = quad.push_vertex(Vec3::new(1.0, 1.0, 0.0));
        quad.push_triangle(b2, d, c2);

        let r = analyze_mesh(&quad);
        assert_eq!(r.vertices, 4, "duplicated endpoints must fuse");
        assert_eq!(r.faces, 2);
        assert_eq!(r.edges, 5);
        assert_eq!(r.boundary_edges, 4, "only the quad outline is boundary");
        assert_eq!(r.non_manifold_edges, 0);
        assert!(!r.is_closed());
        assert_eq!(r, analyze(&quad.to_soup()));

        // raw index connectivity sees what welding has not yet repaired: two
        // disconnected triangles, the seam edge duplicated into two boundary
        // halves
        let c = analyze_mesh_connectivity(&quad);
        assert_eq!(c.vertices, 6);
        assert_eq!(c.components, 2);
        assert_eq!(c.boundary_edges, 6);

        // welding the seam changes the storage, never the welded topology
        // report — and afterwards the connectivity view agrees with it
        let (welded, stats) = quad.welded();
        assert_eq!(welded.num_vertices(), 4);
        assert_eq!(stats.vertices_merged(), 2);
        // one seam edge = two open sides closed
        assert_eq!(stats.seam_edges_closed(), 2);
        assert_eq!(analyze_mesh(&welded), r);
        assert_eq!(analyze_mesh_connectivity(&welded), r);
    }

    #[test]
    fn three_fan_triangles_make_a_non_manifold_edge() {
        let mut m = IndexedMesh::new();
        let a = m.push_vertex(Vec3::ZERO);
        let b = m.push_vertex(Vec3::new(0.0, 0.0, 1.0));
        for i in 0..3 {
            let t = i as f32 * 2.0;
            let wing = m.push_vertex(Vec3::new((1.0 + t).cos(), (1.0 + t).sin(), 0.5));
            m.push_triangle(a, b, wing);
        }
        let r = analyze_mesh(&m);
        assert_eq!(r.faces, 3);
        assert_eq!(r.non_manifold_edges, 1, "the shared spine edge");
        assert!(!r.is_closed_manifold());
        assert_eq!(r.boundary_edges, 7, "spine (3 faces = odd) + 6 wing edges");
    }

    #[test]
    fn analyze_mesh_welds_across_merge_seams() {
        // two copies of the same quad merged without re-welding: analyze_mesh
        // must fuse the duplicated positions like soup welding does
        let mut a = IndexedMesh::new();
        let v0 = a.push_vertex(Vec3::ZERO);
        let v1 = a.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let v2 = a.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        a.push_triangle(v0, v1, v2);
        let b = a.clone();
        a.merge(b);
        assert_eq!(a.num_vertices(), 6);
        let r = analyze_mesh(&a);
        assert_eq!(r.vertices, 3);
        assert_eq!(r.faces, 2);
        assert_eq!(r, analyze(&a.to_soup()));
    }
}
