//! Mesh topology analysis: welding, components, Euler characteristic.
//!
//! Tools a downstream user needs to *verify* an extracted isosurface: weld
//! the triangle soup into an indexed mesh, count connected components,
//! classify boundary vs interior edges, and compute the Euler characteristic
//! (2 per sphere-like closed component). The test suites use these to check
//! whole-pipeline watertightness.

use crate::mesh::{TriangleSoup, Vec3};
use std::collections::HashMap;

/// Quantization factor for welding (2^20 per unit — exact for the grid-scale
/// coordinates the extractors emit).
const WELD_SCALE: f32 = 1_048_576.0;

fn weld_key(v: Vec3) -> (i64, i64, i64) {
    (
        (v.x * WELD_SCALE).round() as i64,
        (v.y * WELD_SCALE).round() as i64,
        (v.z * WELD_SCALE).round() as i64,
    )
}

/// Summary topology report for a triangle soup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyReport {
    /// Welded (position-unique) vertices.
    pub vertices: usize,
    /// Distinct undirected edges.
    pub edges: usize,
    /// Non-degenerate triangles.
    pub faces: usize,
    /// Edges incident to an odd number of faces (surface boundary — zero for
    /// a closed surface).
    pub boundary_edges: usize,
    /// Connected components (by shared welded vertices).
    pub components: usize,
}

impl TopologyReport {
    /// Euler characteristic `V - E + F`.
    pub fn euler_characteristic(&self) -> i64 {
        self.vertices as i64 - self.edges as i64 + self.faces as i64
    }

    /// Whether every edge is matched (no surface boundary).
    pub fn is_closed(&self) -> bool {
        self.boundary_edges == 0
    }
}

/// Union-find over dense indices.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Analyze a triangle soup: weld vertices, count edges/faces/components.
/// Degenerate (zero-area) triangles are ignored.
pub fn analyze(soup: &TriangleSoup) -> TopologyReport {
    let mut vert_id: HashMap<(i64, i64, i64), u32> = HashMap::new();
    let mut edge_count: HashMap<(u32, u32), u32> = HashMap::new();
    let mut faces = 0usize;
    let mut tri_ids: Vec<[u32; 3]> = Vec::new();
    for t in soup.triangles() {
        if t.is_degenerate() {
            continue;
        }
        faces += 1;
        let mut ids = [0u32; 3];
        for (k, &v) in t.v.iter().enumerate() {
            let next = vert_id.len() as u32;
            ids[k] = *vert_id.entry(weld_key(v)).or_insert(next);
        }
        for i in 0..3 {
            let (a, b) = (ids[i], ids[(i + 1) % 3]);
            let e = if a < b { (a, b) } else { (b, a) };
            if a != b {
                *edge_count.entry(e).or_insert(0) += 1;
            }
        }
        tri_ids.push(ids);
    }
    let mut uf = UnionFind::new(vert_id.len());
    for ids in &tri_ids {
        uf.union(ids[0], ids[1]);
        uf.union(ids[1], ids[2]);
    }
    let mut roots = std::collections::HashSet::new();
    for v in 0..vert_id.len() as u32 {
        let r = uf.find(v);
        roots.insert(r);
    }
    TopologyReport {
        vertices: vert_id.len(),
        edges: edge_count.len(),
        faces,
        boundary_edges: edge_count.values().filter(|&&c| c % 2 == 1).count(),
        components: roots.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::marching_cubes;
    use crate::mesh::Triangle;
    use oociso_volume::field::{AnalyticField, FieldExt, SphereField, TorusField};
    use oociso_volume::{Dims3, Volume};

    fn extract(f: &impl AnalyticField, level: f32, n: usize) -> TriangleSoup {
        let vol: Volume<f32> = f.sample(Dims3::cube(n));
        let mut soup = TriangleSoup::new();
        marching_cubes(&vol, level, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        soup
    }

    #[test]
    fn sphere_topology() {
        let soup = extract(&SphereField::centered(0.3, 128.0), 128.0, 24);
        let r = analyze(&soup);
        assert!(r.is_closed());
        assert_eq!(r.components, 1);
        assert_eq!(r.euler_characteristic(), 2, "{r:?}");
    }

    #[test]
    fn torus_topology() {
        let f = TorusField {
            major: 0.3,
            minor: 0.1,
            level: 128.0,
            slope: 400.0,
        };
        let soup = extract(&f, 128.0, 40);
        let r = analyze(&soup);
        assert!(r.is_closed());
        assert_eq!(r.components, 1);
        assert_eq!(r.euler_characteristic(), 0, "genus-1: {r:?}");
    }

    #[test]
    fn two_spheres_two_components() {
        let f = |x: f32, y: f32, z: f32| {
            let a = SphereField {
                center: [0.28, 0.5, 0.5],
                radius: 0.15,
                level: 128.0,
                slope: 400.0,
            };
            let b = SphereField {
                center: [0.72, 0.5, 0.5],
                radius: 0.15,
                level: 128.0,
                slope: 400.0,
            };
            a.eval(x, y, z).max(b.eval(x, y, z))
        };
        let soup = extract(&f, 128.0, 32);
        let r = analyze(&soup);
        assert_eq!(r.components, 2, "{r:?}");
        assert!(r.is_closed());
        assert_eq!(r.euler_characteristic(), 4, "two spheres: {r:?}");
    }

    #[test]
    fn open_surface_has_boundary() {
        // a plane through the volume exits at the sides: boundary edges > 0
        let f = |_x: f32, _y: f32, z: f32| z * 255.0;
        let soup = extract(&f, 128.0, 12);
        let r = analyze(&soup);
        assert!(!r.is_closed());
        assert!(r.boundary_edges > 0);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn degenerate_triangles_ignored() {
        let mut soup = TriangleSoup::new();
        soup.push(Triangle {
            v: [Vec3::ZERO, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)],
        });
        let r = analyze(&soup);
        assert_eq!(r.faces, 0);
        assert_eq!(r.vertices, 0);
    }

    #[test]
    fn empty_soup() {
        let r = analyze(&TriangleSoup::new());
        assert_eq!(r.vertices, 0);
        assert_eq!(r.components, 0);
        assert!(r.is_closed());
    }
}
