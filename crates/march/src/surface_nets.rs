//! High-performance SurfaceNets (arXiv:2401.14906, Kitware style).
//!
//! Where Marching Cubes puts a vertex on every intersected lattice edge and
//! triangulates per cell, SurfaceNets puts **one vertex per active cell**
//! (the centroid of the cell's edge crossings) and emits **one quad per
//! crossing lattice edge**, connecting the four cell vertices around that
//! edge. The result has roughly half the triangles of MC at the same
//! resolution, from a cheaper kernel, at the cost of slightly smoothed
//! geometry — bounded Laplacian smoothing passes (each vertex clamped
//! strictly inside its own cell) then trade stair-stepping for quality
//! without ever changing connectivity.
//!
//! # Distributed extraction
//!
//! The kernel is written block-local so it rides the out-of-core pipeline
//! unchanged:
//!
//! * a cell's vertex depends only on the cell's own 8 samples, and blocks
//!   partition the cells, so every vertex is computed exactly once
//!   cluster-wide and **no seam welding is needed** — vertex identity is the
//!   cell key itself;
//! * a quad around a crossing edge touches up to 4 cells. If all four are in
//!   the block it is triangulated immediately ("interior"); otherwise the
//!   block owning the *minimum* cell records a 16-byte [`SeamQuad`] and the
//!   merge stage resolves it against the concatenated vertex→cell table
//!   ([`stitch_seams`]) once all blocks are in. Sorting the seams makes the
//!   stitched output independent of block partitioning and arrival order.
//!
//! Crossing edges that exit the sampled volume produce no quad — the surface
//! is left open at the dataset boundary, exactly like the MC kernels.
//!
//! Smoothing ([`smooth_surface_nets`]) runs after the stitch so the
//! neighbor graph spans seams; its clamp box is inset by
//! [`SN_CLAMP_MARGIN`], which keeps every smoothed vertex strictly inside
//! its own cell — two distinct cells can never produce coincident vertices,
//! so position-quantizing topology analysis agrees with raw connectivity.

use crate::backend::{pack_cell, unpack_cell, BlockDomain, BlockOutput, SeamQuad, PERP};
use crate::indexed::IndexedMesh;
use crate::mc::{interp_edge, McStats};
use crate::mesh::Vec3;
use crate::tables::{CORNERS, EDGES};
use oociso_volume::{ScalarValue, Volume};
use std::collections::HashMap;

/// Smoothing passes the pipeline applies after the merge stitch.
pub const SN_SMOOTH_PASSES: usize = 2;

/// Per-pass relaxation factor toward the neighbor average.
const SN_RELAX: f32 = 0.5;

/// Clamp inset (in cells): smoothed vertices stay at least this far inside
/// their cell, so vertices of distinct cells stay distinct.
pub const SN_CLAMP_MARGIN: f32 = 0.05;

/// Sentinel for "cell has no vertex" in the cell→vertex grid.
const NO_CELL: u32 = u32::MAX;

/// Reusable working memory for [`sn_block`]: the sample sign plane and the
/// per-block cell→vertex grid. Hold one per worker thread.
#[derive(Default)]
pub struct SnScratch {
    /// 1 byte per sample: `1` iff `sample < iso`.
    signs: Vec<u8>,
    /// Mesh vertex index per block cell (`NO_CELL` when inactive).
    cell_index: Vec<u32>,
}

impl SnScratch {
    /// Fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Extract one block's SurfaceNets geometry, appending to `out` (see the
/// module docs for the block contract). `world_origin`/`scale` place the
/// block in world space exactly like the MC kernels; the pipeline passes
/// the block's integer global origin at unit scale.
pub(crate) fn sn_block<S: ScalarValue>(
    vol: &Volume<S>,
    iso: f32,
    domain: &BlockDomain,
    world_origin: Vec3,
    scale: Vec3,
    out: &mut BlockOutput,
    scratch: &mut SnScratch,
) -> McStats {
    let dims = vol.dims();
    let mut stats = McStats {
        cells_visited: dims.num_cells() as u64,
        ..Default::default()
    };
    if dims.nx < 2 || dims.ny < 2 || dims.nz < 2 {
        return stats;
    }
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    let (ncx, ncy) = (nx - 1, ny - 1);
    let data = vol.data();

    // sign pre-pass: one comparison per sample
    scratch.signs.clear();
    scratch.signs.reserve(data.len());
    scratch
        .signs
        .extend(data.iter().map(|v| (v.to_f32() < iso) as u8));
    let signs = &scratch.signs;

    // pass 1: one vertex per active cell — the centroid of its edge
    // crossings, each interpolated through the shared canonical crossing
    // function so positions are exact functions of the cell's samples
    scratch.cell_index.clear();
    scratch.cell_index.resize(dims.num_cells(), NO_CELL);
    let (gx0, gy0, gz0) = domain.origin;
    let mut corner_vals = [0.0f32; 8];
    for cz in 0..nz - 1 {
        for cy in 0..ny - 1 {
            for cx in 0..nx - 1 {
                let mut inside = 0u8;
                for (i, &(dx, dy, dz)) in CORNERS.iter().enumerate() {
                    inside |= signs[((cz + dz) * ny + cy + dy) * nx + cx + dx] << i;
                }
                if inside == 0 || inside == 0xff {
                    continue;
                }
                stats.active_cells += 1;
                for (i, &(dx, dy, dz)) in CORNERS.iter().enumerate() {
                    corner_vals[i] = data[((cz + dz) * ny + cy + dy) * nx + cx + dx].to_f32();
                }
                let mut sum = Vec3::ZERO;
                let mut crossings = 0u32;
                for (e, &(a, b)) in EDGES.iter().enumerate() {
                    if ((inside >> a) ^ (inside >> b)) & 1 == 1 {
                        sum += interp_edge(e, (cx, cy, cz), &corner_vals, iso, world_origin, scale);
                        crossings += 1;
                    }
                }
                let vi = out.mesh.push_vertex(sum / crossings as f32);
                scratch.cell_index[(cz * ncy + cy) * ncx + cx] = vi;
                out.cells.push(pack_cell(gx0 + cx, gy0 + cy, gz0 + cz));
            }
        }
    }

    // pass 2: one quad per crossing lattice edge whose minimum surrounding
    // cell this block owns — triangulated now when all four cells are
    // local, deferred as a SeamQuad otherwise
    let go = [gx0, gy0, gz0];
    let nd = [nx, ny, nz];
    let nvol = [
        domain.volume_dims.nx,
        domain.volume_dims.ny,
        domain.volume_dims.nz,
    ];
    for axis in 0..3 {
        let (b, c) = PERP[axis];
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        hi[axis] = nd[axis] - 2;
        for q in [b, c] {
            lo[q] = 1;
            // at the volume's upper boundary the outer cell ring does not
            // exist: the surface stays open there, like the MC clip
            hi[q] = if go[q] + nd[q] == nvol[q] {
                nd[q] - 2
            } else {
                nd[q] - 1
            };
        }
        for pz in lo[2]..=hi[2] {
            for py in lo[1]..=hi[1] {
                for px in lo[0]..=hi[0] {
                    let p = [px, py, pz];
                    let i0 = (p[2] * ny + p[1]) * nx + p[0];
                    let mut p1 = p;
                    p1[axis] += 1;
                    let i1 = (p1[2] * ny + p1[1]) * nx + p1[0];
                    let s0 = signs[i0];
                    if s0 == signs[i1] {
                        continue;
                    }
                    if p[b] < nd[b] - 1 && p[c] < nd[c] - 1 {
                        // interior: all four cells are this block's
                        let cell = |db: usize, dc: usize| {
                            let mut q = p;
                            q[b] -= 1 - db;
                            q[c] -= 1 - dc;
                            scratch.cell_index[(q[2] * ncy + q[1]) * ncx + q[0]]
                        };
                        // counter-clockwise around +axis when the base
                        // sample is inside (< iso): normal faces ≥ iso
                        let ring = if s0 == 1 {
                            [cell(0, 0), cell(1, 0), cell(1, 1), cell(0, 1)]
                        } else {
                            [cell(0, 0), cell(0, 1), cell(1, 1), cell(1, 0)]
                        };
                        debug_assert!(ring.iter().all(|&v| v != NO_CELL));
                        out.mesh.push_triangle(ring[0], ring[1], ring[2]);
                        out.mesh.push_triangle(ring[0], ring[2], ring[3]);
                        stats.triangles += 2;
                    } else {
                        out.seams.push(SeamQuad {
                            base: (
                                (go[0] + p[0]) as u32,
                                (go[1] + p[1]) as u32,
                                (go[2] + p[2]) as u32,
                            ),
                            axis: axis as u8,
                            inside_at_base: s0 == 1,
                        });
                    }
                }
            }
        }
    }
    stats
}

/// Resolve the deferred seam quads of a merged SurfaceNets extraction:
/// `cells` is the concatenated vertex→cell table (parallel to `mesh`'s
/// vertices), `seams` the union of every block's deferred quads. Seams are
/// sorted first, so the appended triangles are independent of block
/// partitioning and worker scheduling. Returns the triangles appended.
///
/// Panics if a seam references a cell with no vertex — impossible for
/// outputs of [`sn_block`] over a complete block partition (a cell around a
/// crossing edge always has mixed signs, hence a vertex).
pub fn stitch_seams(mesh: &mut IndexedMesh, cells: &[u64], seams: &mut [SeamQuad]) -> u64 {
    debug_assert_eq!(cells.len(), mesh.num_vertices());
    seams.sort_unstable();
    let map: HashMap<u64, u32> = cells
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u32))
        .collect();
    let mut tris = 0u64;
    for q in seams.iter() {
        let v = q
            .cell_ring()
            .map(|k| *map.get(&k).expect("seam quad references an inactive cell"));
        mesh.push_triangle(v[0], v[1], v[2]);
        mesh.push_triangle(v[0], v[2], v[3]);
        tris += 2;
    }
    tris
}

/// Bounded Laplacian smoothing over a (stitched) SurfaceNets mesh: each
/// pass moves every connected vertex half-way toward the average of its
/// triangle neighbors, then clamps it inside its own cell's box inset by
/// [`SN_CLAMP_MARGIN`]. Connectivity never changes; runs are deterministic
/// (fixed accumulation order over the index buffer).
pub fn smooth_surface_nets(
    mesh: &mut IndexedMesh,
    cells: &[u64],
    origin: Vec3,
    scale: Vec3,
    passes: usize,
) {
    let n = mesh.num_vertices();
    debug_assert_eq!(cells.len(), n);
    if passes == 0 || n == 0 || mesh.is_empty() {
        return;
    }
    let indices = mesh.indices().to_vec();
    let mut accum = vec![Vec3::ZERO; n];
    let mut count = vec![0u32; n];
    for _ in 0..passes {
        accum.fill(Vec3::ZERO);
        count.fill(0);
        let pos = mesh.positions();
        for t in indices.chunks_exact(3) {
            let (a, b, c) = (t[0] as usize, t[1] as usize, t[2] as usize);
            let (pa, pb, pc) = (pos[a], pos[b], pos[c]);
            accum[a] += pb;
            accum[a] += pc;
            accum[b] += pa;
            accum[b] += pc;
            accum[c] += pa;
            accum[c] += pb;
            count[a] += 2;
            count[b] += 2;
            count[c] += 2;
        }
        let pos = mesh.positions_mut();
        for i in 0..n {
            if count[i] == 0 {
                continue;
            }
            let target = accum[i] / count[i] as f32;
            let p = pos[i] + (target - pos[i]) * SN_RELAX;
            let (cx, cy, cz) = unpack_cell(cells[i]);
            let lo = Vec3::new(
                origin.x + (cx as f32 + SN_CLAMP_MARGIN) * scale.x,
                origin.y + (cy as f32 + SN_CLAMP_MARGIN) * scale.y,
                origin.z + (cz as f32 + SN_CLAMP_MARGIN) * scale.z,
            );
            let hi = Vec3::new(
                origin.x + (cx as f32 + 1.0 - SN_CLAMP_MARGIN) * scale.x,
                origin.y + (cy as f32 + 1.0 - SN_CLAMP_MARGIN) * scale.y,
                origin.z + (cz as f32 + 1.0 - SN_CLAMP_MARGIN) * scale.z,
            );
            pos[i] = p.max(lo).min(hi);
        }
    }
}

/// Whole-volume SurfaceNets, appending to `mesh` — the standalone sibling
/// of [`crate::mc::marching_cubes_indexed`] for direct use and benches.
/// `origin`/`scale` place the volume in world space; `smooth_passes`
/// bounded smoothing passes run before returning
/// ([`SN_SMOOTH_PASSES`] is the pipeline default).
pub fn surface_nets<S: ScalarValue>(
    vol: &Volume<S>,
    iso: f32,
    origin: Vec3,
    scale: Vec3,
    smooth_passes: usize,
    mesh: &mut IndexedMesh,
) -> McStats {
    let mut out = BlockOutput::default();
    let mut scratch = SnScratch::new();
    let stats = sn_block(
        vol,
        iso,
        &BlockDomain::whole(vol.dims()),
        origin,
        scale,
        &mut out,
        &mut scratch,
    );
    debug_assert!(out.seams.is_empty(), "whole-volume block cannot have seams");
    smooth_surface_nets(&mut out.mesh, &out.cells, origin, scale, smooth_passes);
    mesh.merge(out.mesh);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BackendScratch};
    use crate::topology::{analyze_mesh, analyze_mesh_connectivity};
    use oociso_volume::field::{FieldExt, GyroidField, SphereField, TorusField};
    use oociso_volume::Dims3;

    fn sphere(n: usize) -> Volume<u8> {
        SphereField::centered(0.32, 128.0).sample(Dims3::cube(n))
    }

    #[test]
    fn sphere_is_closed_manifold_with_euler_2() {
        let vol = sphere(24);
        let mut mesh = IndexedMesh::new();
        let stats = surface_nets(
            &vol,
            127.5,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            SN_SMOOTH_PASSES,
            &mut mesh,
        );
        assert!(stats.active_cells > 100);
        assert_eq!(stats.triangles as usize, mesh.len());
        assert_eq!(mesh.num_vertices() as u64, stats.active_cells);
        let top = analyze_mesh(&mesh);
        assert!(top.is_closed_manifold(), "{top:?}");
        assert_eq!(top.euler_characteristic(), 2);
        assert_eq!(top.components, 1);
        // smoothing keeps quantized positions distinct, so position-based
        // and raw-connectivity analyses agree
        let conn = analyze_mesh_connectivity(&mesh);
        assert_eq!(top, conn);
    }

    #[test]
    fn torus_euler_characteristic_is_zero() {
        let vol: Volume<u8> = TorusField {
            major: 0.30,
            minor: 0.12,
            level: 128.0,
            slope: 200.0,
        }
        .sample(Dims3::cube(33));
        let mut mesh = IndexedMesh::new();
        surface_nets(
            &vol,
            127.5,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            SN_SMOOTH_PASSES,
            &mut mesh,
        );
        let top = analyze_mesh(&mesh);
        assert!(top.is_closed_manifold(), "{top:?}");
        assert_eq!(top.euler_characteristic(), 0);
    }

    #[test]
    fn emits_fewer_primitives_than_mc() {
        let vol = sphere(33);
        let mut sn = IndexedMesh::new();
        surface_nets(
            &vol,
            127.5,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            0,
            &mut sn,
        );
        let mut mc = IndexedMesh::new();
        let mut scratch = crate::mc::SlabScratch::new();
        crate::mc::marching_cubes_indexed(
            &vol,
            127.5,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mc,
            &mut scratch,
        );
        // SN's primitive is the quad (2 triangles): about one per crossing
        // edge, roughly half of MC's triangle count at the same resolution
        let quads = sn.len() / 2;
        assert!(
            (quads as f64) < 0.7 * mc.len() as f64,
            "SN {} quads vs MC {} triangles",
            quads,
            mc.len()
        );
    }

    #[test]
    fn vertices_stay_inside_their_cells() {
        let vol = sphere(20);
        let mut out = BlockOutput::default();
        let mut scratch = SnScratch::new();
        sn_block(
            &vol,
            127.5,
            &BlockDomain::whole(vol.dims()),
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut out,
            &mut scratch,
        );
        let check = |mesh: &IndexedMesh, cells: &[u64], inset: f32| {
            for (p, &key) in mesh.positions().iter().zip(cells) {
                let (cx, cy, cz) = unpack_cell(key);
                for (v, lo) in [(p.x, cx as f32), (p.y, cy as f32), (p.z, cz as f32)] {
                    assert!(
                        v >= lo - 1e-6 + inset && v <= lo + 1.0 + 1e-6 - inset,
                        "vertex {p:?} outside cell ({cx},{cy},{cz})"
                    );
                }
            }
        };
        check(&out.mesh, &out.cells, 0.0);
        smooth_surface_nets(
            &mut out.mesh,
            &out.cells,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            3,
        );
        check(&out.mesh, &out.cells, SN_CLAMP_MARGIN);
    }

    /// The distributed contract: extracting per metacell block, stitching
    /// the deferred seams, then smoothing must reproduce the whole-volume
    /// surface — identical topology, one quad per crossing edge, no
    /// duplicates or holes along block seams.
    #[test]
    fn block_decomposition_stitches_to_whole_volume_topology() {
        let f = GyroidField {
            cells: 2.0,
            level: 128.0,
            amplitude: 70.0,
        };
        for (dims, k) in [
            (Dims3::cube(25), 9),
            (Dims3::new(21, 17, 25), 5),
            (Dims3::cube(33), 9),
        ] {
            let vol: Volume<u8> = f.sample(dims);
            let iso = 127.5;

            let mut whole = IndexedMesh::new();
            let whole_stats = surface_nets(
                &vol,
                iso,
                Vec3::ZERO,
                Vec3::new(1.0, 1.0, 1.0),
                0, // unsmoothed: positions must match the stitched mesh bit-for-bit
                &mut whole,
            );

            let layout = oociso_metacell::MetacellLayout::new(dims, k);
            let backend = Backend::SurfaceNets.instance::<u8>();
            let mut out = BlockOutput::default();
            let mut scratch = BackendScratch::new();
            for id in layout.ids() {
                let ((x0, y0, z0), (x1, y1, z1)) = layout.vertex_box(id);
                let sub = vol.extract_box((x0, y0, z0), (x1, y1, z1));
                let domain = BlockDomain {
                    origin: (x0, y0, z0),
                    volume_dims: dims,
                };
                backend.extract_block(&sub, iso, &domain, &mut out, &mut scratch);
            }
            let BlockOutput {
                mut mesh,
                cells,
                mut seams,
            } = out;
            assert!(!seams.is_empty(), "k={k}: blocks must defer seam quads");
            stitch_seams(&mut mesh, &cells, &mut seams);

            assert_eq!(mesh.len(), whole.len(), "k={k} dims={dims:?}");
            assert_eq!(mesh.num_vertices() as u64, whole_stats.active_cells);
            let a = analyze_mesh_connectivity(&mesh);
            let b = analyze_mesh_connectivity(&whole);
            assert_eq!(a, b, "k={k} dims={dims:?}");
            // before smoothing the triangle multisets agree exactly: same
            // quads around the same crossing edges, and every vertex is
            // computed from the same samples at the same world transform
            assert_eq!(
                crate::mesh::canonical_triangles(&mesh.to_soup()),
                crate::mesh::canonical_triangles(&whole.to_soup()),
                "k={k} dims={dims:?}"
            );

            // smoothing moves vertices but can never change connectivity or
            // collapse two cells' vertices together (clamp inset)
            smooth_surface_nets(
                &mut mesh,
                &cells,
                Vec3::ZERO,
                Vec3::new(1.0, 1.0, 1.0),
                SN_SMOOTH_PASSES,
            );
            assert_eq!(analyze_mesh_connectivity(&mesh), a);
            assert_eq!(analyze_mesh(&mesh), a, "k={k}: smoothed verts collided");
        }
    }

    #[test]
    fn flat_field_yields_nothing() {
        let vol = Volume::<u8>::filled(Dims3::cube(8), 10);
        let mut mesh = IndexedMesh::new();
        let stats = surface_nets(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            2,
            &mut mesh,
        );
        assert_eq!(stats.active_cells, 0);
        assert_eq!(stats.triangles, 0);
        assert!(mesh.is_empty());
        assert_eq!(stats.cells_visited, 7 * 7 * 7);
    }

    #[test]
    fn normals_point_toward_higher_values() {
        // SphereField is higher inside; inside is ≥ iso, so normals must
        // point toward the center — the same convention as the MC kernels.
        let vol = sphere(24);
        let mut mesh = IndexedMesh::new();
        surface_nets(
            &vol,
            127.5,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            SN_SMOOTH_PASSES,
            &mut mesh,
        );
        let center = Vec3::new(11.5, 11.5, 11.5);
        let mut agree = 0usize;
        for t in mesh.triangles() {
            if t.normal().dot(center - t.centroid()) > 0.0 {
                agree += 1;
            }
        }
        let frac = agree as f64 / mesh.len() as f64;
        assert!(frac > 0.99, "only {frac:.3} of normals point to high side");
    }
}
