//! Marching Cubes over a dense (sub-)volume.
//!
//! Two kernels share the generated case tables and (bit-identical)
//! edge-crossing interpolation:
//!
//! * [`marching_cubes`] — the straightforward reference kernel: per-cell
//!   bounds-checked corner gathers, every crossing re-interpolated, output an
//!   unindexed [`TriangleSoup`]. Retained as the equivalence oracle and
//!   baseline.
//! * [`marching_cubes_indexed`] — the slab-sliding production kernel: walks
//!   z-slabs over raw row slices, classifies every sample **once** into
//!   per-row sign bitmasks (the pre-pass that also skips inactive rows and,
//!   via word-level mask algebra, jumps straight to active cells), and emits
//!   an [`IndexedMesh`] whose vertices are deduplicated through rolling
//!   per-layer edge caches — each crossing is interpolated exactly once.
//!
//! The property tests assert the two kernels produce identical canonical
//! triangle multisets over the synthetic field zoo.

use crate::indexed::IndexedMesh;
use crate::mesh::{Triangle, TriangleSoup, Vec3};
use crate::tables::{tables, EdgeAxis, CORNERS, EDGES, EDGE_CANON};
use oociso_volume::{Dims3, ScalarValue, Volume};

/// Counters from one marching-cubes pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McStats {
    /// Unit cells examined.
    pub cells_visited: u64,
    /// Cells that intersect the isosurface.
    pub active_cells: u64,
    /// Triangles emitted.
    pub triangles: u64,
}

impl McStats {
    /// Accumulate another pass's counters.
    pub fn merge(&mut self, o: &McStats) {
        self.cells_visited += o.cells_visited;
        self.active_cells += o.active_cells;
        self.triangles += o.triangles;
    }
}

/// Extract the isosurface of `vol` at `iso` into `soup`.
///
/// `origin` is the world position of vertex `(0,0,0)` and `scale` the world
/// extent of one cell per axis — a metacell passes its own vertex-box corner
/// so that per-metacell outputs assemble seamlessly.
///
/// Vertices on shared cell edges are interpolated in a canonical corner order
/// (lexicographic grid position), so adjacent cells — and adjacent metacells —
/// produce bit-identical positions: the soup is watertight wherever the
/// isosurface does not exit the sampled region.
pub fn marching_cubes<S: ScalarValue>(
    vol: &Volume<S>,
    iso: f32,
    origin: Vec3,
    scale: Vec3,
    soup: &mut TriangleSoup,
) -> McStats {
    let dims = vol.dims();
    let mut stats = McStats::default();
    let t = tables();
    let mut corner_vals = [0.0f32; 8];
    let mut edge_points = [Vec3::ZERO; 12];

    for cz in 0..dims.nz.saturating_sub(1) {
        for cy in 0..dims.ny.saturating_sub(1) {
            for cx in 0..dims.nx.saturating_sub(1) {
                stats.cells_visited += 1;
                let config = cell_config(vol, (cx, cy, cz), iso, &mut corner_vals);
                if config == 0 || config == 255 {
                    continue;
                }
                let loops = t.loops(config);
                if loops.is_empty() {
                    continue;
                }
                stats.active_cells += 1;
                // interpolate every intersected edge once
                for l in loops {
                    for &e in l {
                        edge_points[e as usize] =
                            interp_edge(e as usize, (cx, cy, cz), &corner_vals, iso, origin, scale);
                    }
                }
                for l in loops {
                    let v0 = edge_points[l[0] as usize];
                    for w in l[1..].windows(2) {
                        let tri = Triangle {
                            v: [v0, edge_points[w[0] as usize], edge_points[w[1] as usize]],
                        };
                        soup.push(tri);
                        stats.triangles += 1;
                    }
                }
            }
        }
    }
    stats
}

/// Classify one cell: fill `corner_vals` with the 8 corner samples (as `f32`,
/// [`CORNERS`] order) and return the sign configuration (bit `i` set ⇔ corner
/// `i` `< iso`). The single corner-sampling loop shared by the reference
/// kernel and [`count_active_cells`], so the planner's count and the kernel
/// can never drift.
#[inline]
fn cell_config<S: ScalarValue>(
    vol: &Volume<S>,
    (cx, cy, cz): (usize, usize, usize),
    iso: f32,
    corner_vals: &mut [f32; 8],
) -> u8 {
    let mut config = 0u8;
    for (i, &(dx, dy, dz)) in CORNERS.iter().enumerate() {
        let v = vol.get(cx + dx, cy + dy, cz + dz).to_f32();
        corner_vals[i] = v;
        if v < iso {
            config |= 1 << i;
        }
    }
    config
}

/// Interpolate the crossing on the edge from grid vertex `ga` to `gb`
/// (`ga` must be the global-lexicographically lower endpoint), with sample
/// values `va`/`vb`. Both kernels funnel through this function, so any two
/// cells — or metacells, or kernels — interpolating the same global edge
/// compute bit-identical points.
///
/// Endpoints are transformed to world space *before* interpolating: with
/// integer-valued origins (metacell corners) the endpoint positions are
/// exact, so adjacent metacells compute bit-identical crossing points.
#[inline]
pub(crate) fn interp_crossing(
    ga: (usize, usize, usize),
    gb: (usize, usize, usize),
    va: f32,
    vb: f32,
    iso: f32,
    origin: Vec3,
    scale: Vec3,
) -> Vec3 {
    let pa = Vec3::new(
        origin.x + ga.0 as f32 * scale.x,
        origin.y + ga.1 as f32 * scale.y,
        origin.z + ga.2 as f32 * scale.z,
    );
    let pb = Vec3::new(
        origin.x + gb.0 as f32 * scale.x,
        origin.y + gb.1 as f32 * scale.y,
        origin.z + gb.2 as f32 * scale.z,
    );
    let t = if (vb - va).abs() > 0.0 {
        ((iso - va) / (vb - va)).clamp(0.0, 1.0)
    } else {
        0.5
    };
    pa + (pb - pa) * t
}

/// Interpolate the isosurface crossing on cube edge `e` of the cell at `cell`,
/// with corners canonicalized to lexicographic (z, y, x) order so both cells
/// sharing the edge compute bit-identical points.
#[inline]
pub(crate) fn interp_edge(
    e: usize,
    cell: (usize, usize, usize),
    corner_vals: &[f32; 8],
    iso: f32,
    origin: Vec3,
    scale: Vec3,
) -> Vec3 {
    let (mut a, mut b) = EDGES[e];
    let lex = |c: usize| {
        (
            cell.2 + CORNERS[c].2,
            cell.1 + CORNERS[c].1,
            cell.0 + CORNERS[c].0,
        )
    };
    if lex(b) < lex(a) {
        std::mem::swap(&mut a, &mut b);
    }
    interp_crossing(
        (
            cell.0 + CORNERS[a].0,
            cell.1 + CORNERS[a].1,
            cell.2 + CORNERS[a].2,
        ),
        (
            cell.0 + CORNERS[b].0,
            cell.1 + CORNERS[b].1,
            cell.2 + CORNERS[b].2,
        ),
        corner_vals[a],
        corner_vals[b],
        iso,
        origin,
        scale,
    )
}

/// Count active cells without emitting geometry (used by planners/reports).
pub fn count_active_cells<S: ScalarValue>(vol: &Volume<S>, iso: f32) -> u64 {
    let dims = vol.dims();
    let mut active = 0u64;
    let mut corner_vals = [0.0f32; 8];
    for cz in 0..dims.nz.saturating_sub(1) {
        for cy in 0..dims.ny.saturating_sub(1) {
            for cx in 0..dims.nx.saturating_sub(1) {
                let config = cell_config(vol, (cx, cy, cz), iso, &mut corner_vals);
                if config != 0 && config != 255 {
                    active += 1;
                }
            }
        }
    }
    active
}

/// Sentinel for "edge not yet interpolated" in the rolling caches.
const NO_VERTEX: u32 = u32::MAX;

/// Per-layer sign bitmasks: for every sample row, bit `x` is set iff
/// `sample(x, y, layer) < iso`, plus per-row any/all summaries used to skip
/// inactive rows in O(1).
#[derive(Default)]
struct LayerMasks {
    words_per_row: usize,
    words: Vec<u64>,
    any: Vec<bool>,
    all: Vec<bool>,
}

impl LayerMasks {
    fn configure(&mut self, nx: usize, ny: usize) {
        self.words_per_row = nx.div_ceil(64);
        self.words.clear();
        self.words.resize(self.words_per_row * ny, 0);
        self.any.clear();
        self.any.resize(ny, false);
        self.all.clear();
        self.all.resize(ny, false);
    }

    #[inline]
    fn row(&self, y: usize) -> &[u64] {
        &self.words[y * self.words_per_row..(y + 1) * self.words_per_row]
    }

    /// Classify one sample layer (each sample compared against `iso` exactly
    /// once — this pre-pass is the only full sweep the slab kernel does).
    fn fill<S: ScalarValue>(&mut self, layer: &[S], nx: usize, ny: usize, iso: f32) {
        let wpr = self.words_per_row;
        for y in 0..ny {
            let row = &layer[y * nx..(y + 1) * nx];
            let words = &mut self.words[y * wpr..(y + 1) * wpr];
            let mut any = false;
            let mut all = true;
            for (w, chunk) in row.chunks(64).enumerate() {
                let bits = sign_word(chunk, iso);
                let full = if chunk.len() == 64 {
                    !0u64
                } else {
                    (1u64 << chunk.len()) - 1
                };
                any |= bits != 0;
                all &= bits == full;
                words[w] = bits;
            }
            self.any[y] = any;
            self.all[y] = all;
        }
    }
}

/// Classify up to 64 samples against `iso` into a sign word (bit `i` set iff
/// `chunk[i] < iso`).
///
/// Structured for LLVM autovectorization: the classify loop writes one 0/1
/// byte per lane into a fixed 64-byte buffer with no data-dependent branches
/// (packed f32 compares on any SIMD target), then each 8-byte flag group is
/// folded into its 8 result bits with one multiply — for 0/1 bytes
/// `v × 0x0102040810204080` places byte `j` at bit `56 + j` with every
/// cross term either below bit 56 or wrapped past bit 63, and all partial
/// products hit distinct bits, so no carries corrupt the high byte.
#[inline]
fn sign_word<S: ScalarValue>(chunk: &[S], iso: f32) -> u64 {
    debug_assert!(chunk.len() <= 64);
    let mut flags = [0u8; 64];
    for (f, s) in flags[..chunk.len()].iter_mut().zip(chunk) {
        *f = (s.to_f32() < iso) as u8;
    }
    let mut bits = 0u64;
    for (g, group) in flags.chunks_exact(8).enumerate() {
        let v = u64::from_le_bytes(group.try_into().expect("chunks_exact(8)"));
        bits |= (v.wrapping_mul(0x0102_0408_1020_4080) >> 56) << (8 * g);
    }
    bits
}

/// Reusable working memory for [`marching_cubes_indexed`]: the two layer
/// bitmask planes and the three rolling edge→vertex caches. Hold one per
/// worker thread and feed it to every metacell that worker triangulates —
/// no per-call allocation once warm.
#[derive(Default)]
pub struct SlabScratch {
    m0: LayerMasks,
    m1: LayerMasks,
    /// x-edge vertices per vertex layer `[z, z+1]`: `(nx-1) × ny` slots.
    xe: [Vec<u32>; 2],
    /// y-edge vertices per vertex layer: `nx × (ny-1)` slots.
    ye: [Vec<u32>; 2],
    /// z-edge vertices of the current slab: `nx × ny` slots.
    ze: Vec<u32>,
}

impl SlabScratch {
    /// Fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn configure(&mut self, dims: Dims3) {
        self.m0.configure(dims.nx, dims.ny);
        self.m1.configure(dims.nx, dims.ny);
        let nxe = (dims.nx - 1) * dims.ny;
        let nye = dims.nx * (dims.ny - 1);
        let nze = dims.nx * dims.ny;
        for xe in &mut self.xe {
            xe.clear();
            xe.resize(nxe, NO_VERTEX);
        }
        for ye in &mut self.ye {
            ye.clear();
            ye.resize(nye, NO_VERTEX);
        }
        self.ze.clear();
        self.ze.resize(nze, NO_VERTEX);
    }
}

/// Slab-sliding Marching Cubes emitting an [`IndexedMesh`].
///
/// Appends to `mesh` (vertices are shared within this call, so per-metacell
/// calls appending into one mesh dedupe within each metacell but not across
/// metacell seams — exactly like the reference kernel's geometry, which the
/// canonical-triangle-multiset equivalence tests rely on).
///
/// Algorithm per z-slab:
///
/// 1. classify sample layer `z+1` into row sign bitmasks (layer `z`'s masks
///    roll over from the previous slab) — one comparison per sample, total;
/// 2. skip cell rows whose 4 bounding sample rows are uniformly inside or
///    outside (O(1) per row via the masks' any/all summaries);
/// 3. inside active rows, combine the 4 row masks word-wise into an
///    active-cell bitmask and iterate only its set bits; the 8-bit case code
///    is read straight out of the sign masks — no per-cell sample re-reads;
/// 4. resolve each intersected edge through the rolling caches (`x`/`y`
///    edges per vertex layer, `z` edges per slab), interpolating a crossing
///    only the first time any cell touches it.
pub fn marching_cubes_indexed<S: ScalarValue>(
    vol: &Volume<S>,
    iso: f32,
    origin: Vec3,
    scale: Vec3,
    mesh: &mut IndexedMesh,
    scratch: &mut SlabScratch,
) -> McStats {
    let dims = vol.dims();
    let mut stats = McStats {
        cells_visited: dims.num_cells() as u64,
        ..Default::default()
    };
    if dims.nx < 2 || dims.ny < 2 || dims.nz < 2 {
        return stats;
    }
    let t = tables();
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    let ncx = nx - 1;
    let layer_len = nx * ny;
    let data = vol.data();
    scratch.configure(dims);
    let SlabScratch { m0, m1, xe, ye, ze } = scratch;
    m0.fill(&data[..layer_len], nx, ny, iso);
    let wpr = m0.words_per_row;

    for cz in 0..nz - 1 {
        let l0 = &data[cz * layer_len..(cz + 1) * layer_len];
        let l1 = &data[(cz + 1) * layer_len..(cz + 2) * layer_len];
        m1.fill(l1, nx, ny, iso);

        for cy in 0..ny - 1 {
            // row pre-pass: all four bounding sample rows uniformly outside
            // (no bit set) or uniformly inside (every bit set) ⇒ no cell in
            // this row can cross the surface.
            if !(m0.any[cy] || m0.any[cy + 1] || m1.any[cy] || m1.any[cy + 1]) {
                continue;
            }
            if m0.all[cy] && m0.all[cy + 1] && m1.all[cy] && m1.all[cy + 1] {
                continue;
            }
            let r00 = m0.row(cy);
            let r10 = m0.row(cy + 1);
            let r01 = m1.row(cy);
            let r11 = m1.row(cy + 1);
            let v00 = &l0[cy * nx..(cy + 1) * nx];
            let v10 = &l0[(cy + 1) * nx..(cy + 2) * nx];
            let v01 = &l1[cy * nx..(cy + 1) * nx];
            let v11 = &l1[(cy + 1) * nx..(cy + 2) * nx];

            for w in 0..wpr {
                let base = w * 64;
                if base >= ncx {
                    break;
                }
                let u = r00[w] | r10[w] | r01[w] | r11[w];
                let i = r00[w] & r10[w] & r01[w] & r11[w];
                let (u_next, i_next) = if w + 1 < wpr {
                    (
                        r00[w + 1] | r10[w + 1] | r01[w + 1] | r11[w + 1],
                        r00[w + 1] & r10[w + 1] & r01[w + 1] & r11[w + 1],
                    )
                } else {
                    (0, !0u64)
                };
                // bit cx of the shifted masks = mask bit cx+1
                let ush = (u >> 1) | ((u_next & 1) << 63);
                let ish = (i >> 1) | ((i_next & 1) << 63);
                // cell active ⇔ some corner inside and not all corners inside
                let mut act = (u | ush) & !(i & ish);
                let cells_here = ncx - base;
                if cells_here < 64 {
                    act &= (1u64 << cells_here) - 1;
                }
                while act != 0 {
                    let cx = base + act.trailing_zeros() as usize;
                    act &= act - 1;
                    let bit = |r: &[u64], x: usize| ((r[x >> 6] >> (x & 63)) & 1) as u8;
                    let config = bit(r00, cx)
                        | (bit(r00, cx + 1) << 1)
                        | (bit(r10, cx + 1) << 2)
                        | (bit(r10, cx) << 3)
                        | (bit(r01, cx) << 4)
                        | (bit(r01, cx + 1) << 5)
                        | (bit(r11, cx + 1) << 6)
                        | (bit(r11, cx) << 7);
                    let fan = t.fan_triangles(config);
                    if fan.is_empty() {
                        continue;
                    }
                    stats.active_cells += 1;
                    let vals = [
                        v00[cx].to_f32(),
                        v00[cx + 1].to_f32(),
                        v10[cx + 1].to_f32(),
                        v10[cx].to_f32(),
                        v01[cx].to_f32(),
                        v01[cx + 1].to_f32(),
                        v11[cx + 1].to_f32(),
                        v11[cx].to_f32(),
                    ];
                    let mut ev = [0u32; 12];
                    let mut em = t.edge_mask(config);
                    while em != 0 {
                        let e = em.trailing_zeros() as usize;
                        em &= em - 1;
                        let c = &EDGE_CANON[e];
                        let (bx, by, bz) = c.base;
                        let slot = match c.axis {
                            EdgeAxis::X => &mut xe[bz][(cy + by) * ncx + cx],
                            EdgeAxis::Y => &mut ye[bz][cy * nx + cx + bx],
                            EdgeAxis::Z => &mut ze[(cy + by) * nx + cx + bx],
                        };
                        let mut idx = *slot;
                        if idx == NO_VERTEX {
                            let ga = (cx + bx, cy + by, cz + bz);
                            let gb = match c.axis {
                                EdgeAxis::X => (ga.0 + 1, ga.1, ga.2),
                                EdgeAxis::Y => (ga.0, ga.1 + 1, ga.2),
                                EdgeAxis::Z => (ga.0, ga.1, ga.2 + 1),
                            };
                            let p = interp_crossing(
                                ga,
                                gb,
                                vals[c.lo as usize],
                                vals[c.hi as usize],
                                iso,
                                origin,
                                scale,
                            );
                            idx = mesh.push_vertex(p);
                            *slot = idx;
                        }
                        ev[e] = idx;
                    }
                    for tri in fan {
                        mesh.push_triangle(
                            ev[tri[0] as usize],
                            ev[tri[1] as usize],
                            ev[tri[2] as usize],
                        );
                    }
                    stats.triangles += fan.len() as u64;
                }
            }
        }

        // roll to the next slab: layer z+1 becomes layer z; its x/y edge
        // caches roll with it so inter-slab shared edges stay deduplicated.
        std::mem::swap(m0, m1);
        xe.swap(0, 1);
        xe[1].fill(NO_VERTEX);
        ye.swap(0, 1);
        ye[1].fill(NO_VERTEX);
        ze.fill(NO_VERTEX);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::Dims3;
    use std::collections::HashMap;

    fn sphere_soup(n: usize, radius: f32) -> (TriangleSoup, McStats) {
        let f = SphereField::centered(radius, 128.0);
        let vol: Volume<f32> = f.sample(Dims3::cube(n));
        let mut soup = TriangleSoup::new();
        let stats = marching_cubes(&vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        (soup, stats)
    }

    type VKey = (i64, i64, i64);

    /// Quantized vertex key for watertightness checks.
    fn key(v: Vec3) -> VKey {
        let q = 1_048_576.0; // 2^20: exact for our grid-scale coordinates
        (
            (v.x * q).round() as i64,
            (v.y * q).round() as i64,
            (v.z * q).round() as i64,
        )
    }

    #[test]
    fn sphere_surface_is_closed() {
        let (soup, stats) = sphere_soup(24, 0.3);
        assert!(stats.triangles > 100);
        assert_eq!(stats.triangles as usize, soup.len());
        // every undirected edge must be shared by exactly two triangles
        let mut edge_count: HashMap<(VKey, VKey), u32> = HashMap::new();
        for t in soup.triangles() {
            for i in 0..3 {
                let a = key(t.v[i]);
                let b = key(t.v[(i + 1) % 3]);
                let e = if a < b { (a, b) } else { (b, a) };
                *edge_count.entry(e).or_insert(0) += 1;
            }
        }
        for (e, c) in &edge_count {
            assert_eq!(*c, 2, "edge {e:?} shared by {c} triangles");
        }
    }

    #[test]
    fn sphere_area_close_to_analytic() {
        // radius 0.3 of the unit cube sampled on a 48³ grid: world radius in
        // grid units is 0.3 * 47
        let n = 48;
        let (soup, _) = sphere_soup(n, 0.3);
        let r = 0.3 * (n as f32 - 1.0);
        let analytic = 4.0 * std::f32::consts::PI * r * r;
        let measured = soup.area() as f32;
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "area {measured} vs analytic {analytic} ({rel:.3} rel err)"
        );
    }

    #[test]
    fn euler_characteristic_of_sphere() {
        let (soup, _) = sphere_soup(20, 0.28);
        let mut verts = std::collections::HashSet::new();
        let mut edges = std::collections::HashSet::new();
        for t in soup.triangles() {
            for i in 0..3 {
                verts.insert(key(t.v[i]));
                let a = key(t.v[i]);
                let b = key(t.v[(i + 1) % 3]);
                edges.insert(if a < b { (a, b) } else { (b, a) });
            }
        }
        let v = verts.len() as i64;
        let e = edges.len() as i64;
        let f = soup.len() as i64;
        assert_eq!(v - e + f, 2, "V={v} E={e} F={f}");
    }

    #[test]
    fn normals_point_toward_higher_values() {
        // SphereField: higher inside. Inside is ≥ iso; normals must point
        // inward (toward the center).
        let (soup, _) = sphere_soup(24, 0.3);
        let center = Vec3::new(11.5, 11.5, 11.5);
        let mut agree = 0usize;
        for t in soup.triangles() {
            let to_high = center - t.centroid();
            if t.normal().dot(to_high) > 0.0 {
                agree += 1;
            }
        }
        let frac = agree as f64 / soup.len() as f64;
        assert!(frac > 0.99, "only {frac:.3} of normals point to high side");
    }

    #[test]
    fn metacell_decomposition_matches_monolithic() {
        // run MC over the whole volume vs per-metacell with shared layers;
        // triangle multiset must be identical.
        let f = SphereField::centered(0.35, 100.0);
        let dims = Dims3::new(17, 17, 17);
        let vol: Volume<u8> = f.sample(dims);
        let mut whole = TriangleSoup::new();
        marching_cubes(
            &vol,
            100.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut whole,
        );

        let layout = oociso_metacell::MetacellLayout::new(dims, 9);
        let mut parts = TriangleSoup::new();
        for id in layout.ids() {
            let ((x0, y0, z0), (x1, y1, z1)) = layout.vertex_box(id);
            let sub = vol.extract_box((x0, y0, z0), (x1, y1, z1));
            marching_cubes(
                &sub,
                100.0,
                Vec3::new(x0 as f32, y0 as f32, z0 as f32),
                Vec3::new(1.0, 1.0, 1.0),
                &mut parts,
            );
        }
        assert_eq!(whole.len(), parts.len());
        assert_eq!(canon(&whole), canon(&parts));
    }

    #[test]
    fn count_matches_generation() {
        let f = SphereField::centered(0.3, 128.0);
        let vol: Volume<u8> = f.sample(Dims3::cube(16));
        let mut soup = TriangleSoup::new();
        let stats = marching_cubes(&vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        assert_eq!(stats.active_cells, count_active_cells(&vol, 128.0));
        assert_eq!(stats.cells_visited, 15 * 15 * 15);
    }

    #[test]
    fn flat_field_yields_nothing() {
        let vol = Volume::<u8>::filled(Dims3::cube(8), 10);
        let mut soup = TriangleSoup::new();
        let stats = marching_cubes(&vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        assert_eq!(stats.triangles, 0);
        assert_eq!(stats.active_cells, 0);
        assert!(soup.is_empty());
    }

    use crate::mesh::canonical_triangles as canon;

    fn assert_slab_equals_reference<S: ScalarValue>(vol: &Volume<S>, iso: f32) {
        let origin = Vec3::new(3.0, -2.0, 5.0);
        let scale = Vec3::new(1.0, 1.0, 1.0);
        let mut reference = TriangleSoup::new();
        let ref_stats = marching_cubes(vol, iso, origin, scale, &mut reference);
        let mut mesh = IndexedMesh::new();
        let mut scratch = SlabScratch::new();
        let slab_stats = marching_cubes_indexed(vol, iso, origin, scale, &mut mesh, &mut scratch);
        assert_eq!(ref_stats, slab_stats);
        assert_eq!(canon(&reference), canon(&mesh.to_soup()));
    }

    #[test]
    fn slab_kernel_matches_reference_on_sphere() {
        let f = SphereField::centered(0.33, 128.0);
        for n in [2, 3, 5, 16, 24] {
            let vol: Volume<u8> = f.sample(Dims3::cube(n));
            assert_slab_equals_reference(&vol, 128.0);
        }
        // non-cubic, axes straddling the 64-bit mask word boundary
        let vol: Volume<u8> = f.sample(Dims3::new(67, 13, 9));
        assert_slab_equals_reference(&vol, 128.0);
        let vol: Volume<f32> = f.sample(Dims3::new(65, 9, 12));
        assert_slab_equals_reference(&vol, 128.0);
    }

    #[test]
    fn slab_kernel_dedups_shared_vertices() {
        let f = SphereField::centered(0.3, 128.0);
        let vol: Volume<u8> = f.sample(Dims3::cube(24));
        let mut mesh = IndexedMesh::new();
        let mut scratch = SlabScratch::new();
        marching_cubes_indexed(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mesh,
            &mut scratch,
        );
        // closed surface: V - E + F = 2 with E = 3F/2 ⇒ V ≈ F/2. Any
        // duplicated crossing would inflate V well past that.
        assert!(mesh.len() > 100);
        assert!(
            mesh.num_vertices() <= mesh.len() / 2 + 2,
            "V={} F={}: vertices not deduplicated",
            mesh.num_vertices(),
            mesh.len()
        );
        // and every position is distinct
        let mut seen = std::collections::HashSet::new();
        for &p in mesh.positions() {
            assert!(seen.insert(key(p)), "duplicate vertex {p:?}");
        }
    }

    #[test]
    fn slab_scratch_reuse_across_dims_is_clean() {
        let f = SphereField::centered(0.4, 128.0);
        let mut scratch = SlabScratch::new();
        // big volume first, then small: stale cache entries must not leak
        for n in [17, 5, 9, 3, 12] {
            let vol: Volume<u8> = f.sample(Dims3::cube(n));
            let origin = Vec3::ZERO;
            let scale = Vec3::new(1.0, 1.0, 1.0);
            let mut reference = TriangleSoup::new();
            marching_cubes(&vol, 128.0, origin, scale, &mut reference);
            let mut mesh = IndexedMesh::new();
            marching_cubes_indexed(&vol, 128.0, origin, scale, &mut mesh, &mut scratch);
            assert_eq!(canon(&reference), canon(&mesh.to_soup()), "n={n}");
        }
    }

    #[test]
    fn slab_kernel_appends_across_metacells() {
        // per-metacell extraction appending into ONE mesh must equal the
        // monolithic reference soup, exactly like the soup-based test above
        let f = SphereField::centered(0.35, 100.0);
        let dims = Dims3::new(17, 17, 17);
        let vol: Volume<u8> = f.sample(dims);
        let mut whole = TriangleSoup::new();
        marching_cubes(
            &vol,
            100.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut whole,
        );

        let layout = oociso_metacell::MetacellLayout::new(dims, 9);
        let mut mesh = IndexedMesh::new();
        let mut scratch = SlabScratch::new();
        for id in layout.ids() {
            let ((x0, y0, z0), (x1, y1, z1)) = layout.vertex_box(id);
            let sub = vol.extract_box((x0, y0, z0), (x1, y1, z1));
            marching_cubes_indexed(
                &sub,
                100.0,
                Vec3::new(x0 as f32, y0 as f32, z0 as f32),
                Vec3::new(1.0, 1.0, 1.0),
                &mut mesh,
                &mut scratch,
            );
        }
        assert_eq!(canon(&whole), canon(&mesh.to_soup()));
    }

    #[test]
    fn flat_field_yields_nothing_indexed() {
        let vol = Volume::<u8>::filled(Dims3::cube(8), 10);
        let mut mesh = IndexedMesh::new();
        let mut scratch = SlabScratch::new();
        let stats = marching_cubes_indexed(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mesh,
            &mut scratch,
        );
        assert_eq!(stats.triangles, 0);
        assert_eq!(stats.active_cells, 0);
        assert_eq!(stats.cells_visited, 7 * 7 * 7);
        assert!(mesh.is_empty());
    }

    #[test]
    fn no_degenerate_triangles_on_generic_field() {
        let (soup, _) = sphere_soup(16, 0.31);
        let degenerate = soup
            .triangles()
            .iter()
            .filter(|t| t.is_degenerate())
            .count();
        // sphere positioned off-lattice: no crossings exactly at corners
        assert_eq!(degenerate, 0);
    }
}
