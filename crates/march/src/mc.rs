//! Marching Cubes over a dense (sub-)volume.

use crate::mesh::{Triangle, TriangleSoup, Vec3};
use crate::tables::{tables, CORNERS, EDGES};
use oociso_volume::{ScalarValue, Volume};

/// Counters from one marching-cubes pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McStats {
    /// Unit cells examined.
    pub cells_visited: u64,
    /// Cells that intersect the isosurface.
    pub active_cells: u64,
    /// Triangles emitted.
    pub triangles: u64,
}

impl McStats {
    /// Accumulate another pass's counters.
    pub fn merge(&mut self, o: &McStats) {
        self.cells_visited += o.cells_visited;
        self.active_cells += o.active_cells;
        self.triangles += o.triangles;
    }
}

/// Extract the isosurface of `vol` at `iso` into `soup`.
///
/// `origin` is the world position of vertex `(0,0,0)` and `scale` the world
/// extent of one cell per axis — a metacell passes its own vertex-box corner
/// so that per-metacell outputs assemble seamlessly.
///
/// Vertices on shared cell edges are interpolated in a canonical corner order
/// (lexicographic grid position), so adjacent cells — and adjacent metacells —
/// produce bit-identical positions: the soup is watertight wherever the
/// isosurface does not exit the sampled region.
pub fn marching_cubes<S: ScalarValue>(
    vol: &Volume<S>,
    iso: f32,
    origin: Vec3,
    scale: Vec3,
    soup: &mut TriangleSoup,
) -> McStats {
    let dims = vol.dims();
    let mut stats = McStats::default();
    let t = tables();
    let mut corner_vals = [0.0f32; 8];
    let mut edge_points = [Vec3::ZERO; 12];

    for cz in 0..dims.nz.saturating_sub(1) {
        for cy in 0..dims.ny.saturating_sub(1) {
            for cx in 0..dims.nx.saturating_sub(1) {
                stats.cells_visited += 1;
                let mut config = 0u8;
                for (i, &(dx, dy, dz)) in CORNERS.iter().enumerate() {
                    let v = vol.get(cx + dx, cy + dy, cz + dz).to_f32();
                    corner_vals[i] = v;
                    if v < iso {
                        config |= 1 << i;
                    }
                }
                if config == 0 || config == 255 {
                    continue;
                }
                let loops = t.loops(config);
                if loops.is_empty() {
                    continue;
                }
                stats.active_cells += 1;
                // interpolate every intersected edge once
                for l in loops {
                    for &e in l {
                        edge_points[e as usize] = interp_edge(
                            e as usize,
                            (cx, cy, cz),
                            &corner_vals,
                            iso,
                            origin,
                            scale,
                        );
                    }
                }
                for l in loops {
                    let v0 = edge_points[l[0] as usize];
                    for w in l[1..].windows(2) {
                        let tri = Triangle {
                            v: [v0, edge_points[w[0] as usize], edge_points[w[1] as usize]],
                        };
                        soup.push(tri);
                        stats.triangles += 1;
                    }
                }
            }
        }
    }
    stats
}

/// Interpolate the isosurface crossing on cube edge `e` of the cell at `cell`,
/// with corners canonicalized to lexicographic (z, y, x) order so both cells
/// sharing the edge compute bit-identical points.
#[inline]
fn interp_edge(
    e: usize,
    cell: (usize, usize, usize),
    corner_vals: &[f32; 8],
    iso: f32,
    origin: Vec3,
    scale: Vec3,
) -> Vec3 {
    let (mut a, mut b) = EDGES[e];
    let ga = (
        cell.2 + CORNERS[a].2,
        cell.1 + CORNERS[a].1,
        cell.0 + CORNERS[a].0,
    );
    let gb = (
        cell.2 + CORNERS[b].2,
        cell.1 + CORNERS[b].1,
        cell.0 + CORNERS[b].0,
    );
    if gb < ga {
        std::mem::swap(&mut a, &mut b);
    }
    let (va, vb) = (corner_vals[a], corner_vals[b]);
    // Transform both endpoints to world space *before* interpolating: with
    // integer-valued origins (metacell corners) the endpoint positions are
    // exact, so adjacent metacells compute bit-identical crossing points.
    let pa = Vec3::new(
        origin.x + (cell.0 + CORNERS[a].0) as f32 * scale.x,
        origin.y + (cell.1 + CORNERS[a].1) as f32 * scale.y,
        origin.z + (cell.2 + CORNERS[a].2) as f32 * scale.z,
    );
    let pb = Vec3::new(
        origin.x + (cell.0 + CORNERS[b].0) as f32 * scale.x,
        origin.y + (cell.1 + CORNERS[b].1) as f32 * scale.y,
        origin.z + (cell.2 + CORNERS[b].2) as f32 * scale.z,
    );
    let t = if (vb - va).abs() > 0.0 {
        ((iso - va) / (vb - va)).clamp(0.0, 1.0)
    } else {
        0.5
    };
    pa + (pb - pa) * t
}

/// Count active cells without emitting geometry (used by planners/reports).
pub fn count_active_cells<S: ScalarValue>(vol: &Volume<S>, iso: f32) -> u64 {
    let dims = vol.dims();
    let mut active = 0u64;
    for cz in 0..dims.nz.saturating_sub(1) {
        for cy in 0..dims.ny.saturating_sub(1) {
            for cx in 0..dims.nx.saturating_sub(1) {
                let mut below = false;
                let mut above = false;
                for &(dx, dy, dz) in CORNERS.iter() {
                    if vol.get(cx + dx, cy + dy, cz + dz).to_f32() < iso {
                        below = true;
                    } else {
                        above = true;
                    }
                }
                if below && above {
                    active += 1;
                }
            }
        }
    }
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::Dims3;
    use std::collections::HashMap;

    fn sphere_soup(n: usize, radius: f32) -> (TriangleSoup, McStats) {
        let f = SphereField::centered(radius, 128.0);
        let vol: Volume<f32> = f.sample(Dims3::cube(n));
        let mut soup = TriangleSoup::new();
        let stats = marching_cubes(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut soup,
        );
        (soup, stats)
    }

    type VKey = (i64, i64, i64);

    /// Quantized vertex key for watertightness checks.
    fn key(v: Vec3) -> VKey {
        let q = 1_048_576.0; // 2^20: exact for our grid-scale coordinates
        (
            (v.x * q).round() as i64,
            (v.y * q).round() as i64,
            (v.z * q).round() as i64,
        )
    }

    #[test]
    fn sphere_surface_is_closed() {
        let (soup, stats) = sphere_soup(24, 0.3);
        assert!(stats.triangles > 100);
        assert_eq!(stats.triangles as usize, soup.len());
        // every undirected edge must be shared by exactly two triangles
        let mut edge_count: HashMap<(VKey, VKey), u32> = HashMap::new();
        for t in soup.triangles() {
            for i in 0..3 {
                let a = key(t.v[i]);
                let b = key(t.v[(i + 1) % 3]);
                let e = if a < b { (a, b) } else { (b, a) };
                *edge_count.entry(e).or_insert(0) += 1;
            }
        }
        for (e, c) in &edge_count {
            assert_eq!(*c, 2, "edge {e:?} shared by {c} triangles");
        }
    }

    #[test]
    fn sphere_area_close_to_analytic() {
        // radius 0.3 of the unit cube sampled on a 48³ grid: world radius in
        // grid units is 0.3 * 47
        let n = 48;
        let (soup, _) = sphere_soup(n, 0.3);
        let r = 0.3 * (n as f32 - 1.0);
        let analytic = 4.0 * std::f32::consts::PI * r * r;
        let measured = soup.area() as f32;
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "area {measured} vs analytic {analytic} ({rel:.3} rel err)"
        );
    }

    #[test]
    fn euler_characteristic_of_sphere() {
        let (soup, _) = sphere_soup(20, 0.28);
        let mut verts = std::collections::HashSet::new();
        let mut edges = std::collections::HashSet::new();
        for t in soup.triangles() {
            for i in 0..3 {
                verts.insert(key(t.v[i]));
                let a = key(t.v[i]);
                let b = key(t.v[(i + 1) % 3]);
                edges.insert(if a < b { (a, b) } else { (b, a) });
            }
        }
        let v = verts.len() as i64;
        let e = edges.len() as i64;
        let f = soup.len() as i64;
        assert_eq!(v - e + f, 2, "V={v} E={e} F={f}");
    }

    #[test]
    fn normals_point_toward_higher_values() {
        // SphereField: higher inside. Inside is ≥ iso; normals must point
        // inward (toward the center).
        let (soup, _) = sphere_soup(24, 0.3);
        let center = Vec3::new(11.5, 11.5, 11.5);
        let mut agree = 0usize;
        for t in soup.triangles() {
            let to_high = center - t.centroid();
            if t.normal().dot(to_high) > 0.0 {
                agree += 1;
            }
        }
        let frac = agree as f64 / soup.len() as f64;
        assert!(frac > 0.99, "only {frac:.3} of normals point to high side");
    }

    #[test]
    fn metacell_decomposition_matches_monolithic() {
        // run MC over the whole volume vs per-metacell with shared layers;
        // triangle multiset must be identical.
        let f = SphereField::centered(0.35, 100.0);
        let dims = Dims3::new(17, 17, 17);
        let vol: Volume<u8> = f.sample(dims);
        let mut whole = TriangleSoup::new();
        marching_cubes(&vol, 100.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut whole);

        let layout = oociso_metacell::MetacellLayout::new(dims, 9);
        let mut parts = TriangleSoup::new();
        for id in layout.ids() {
            let ((x0, y0, z0), (x1, y1, z1)) = layout.vertex_box(id);
            let sub = vol.extract_box((x0, y0, z0), (x1, y1, z1));
            marching_cubes(
                &sub,
                100.0,
                Vec3::new(x0 as f32, y0 as f32, z0 as f32),
                Vec3::new(1.0, 1.0, 1.0),
                &mut parts,
            );
        }
        assert_eq!(whole.len(), parts.len());
        let canon = |s: &TriangleSoup| {
            let mut v: Vec<_> = s
                .triangles()
                .iter()
                .map(|t| {
                    let mut ks = [key(t.v[0]), key(t.v[1]), key(t.v[2])];
                    ks.sort_unstable();
                    ks
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(canon(&whole), canon(&parts));
    }

    #[test]
    fn count_matches_generation() {
        let f = SphereField::centered(0.3, 128.0);
        let vol: Volume<u8> = f.sample(Dims3::cube(16));
        let mut soup = TriangleSoup::new();
        let stats = marching_cubes(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut soup,
        );
        assert_eq!(stats.active_cells, count_active_cells(&vol, 128.0));
        assert_eq!(stats.cells_visited, 15 * 15 * 15);
    }

    #[test]
    fn flat_field_yields_nothing() {
        let vol = Volume::<u8>::filled(Dims3::cube(8), 10);
        let mut soup = TriangleSoup::new();
        let stats = marching_cubes(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut soup,
        );
        assert_eq!(stats.triangles, 0);
        assert_eq!(stats.active_cells, 0);
        assert!(soup.is_empty());
    }

    #[test]
    fn no_degenerate_triangles_on_generic_field() {
        let (soup, _) = sphere_soup(16, 0.31);
        let degenerate = soup
            .triangles()
            .iter()
            .filter(|t| t.is_degenerate())
            .count();
        // sphere positioned off-lattice: no crossings exactly at corners
        assert_eq!(degenerate, 0);
    }
}
