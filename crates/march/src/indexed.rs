//! Indexed triangle meshes: shared vertices + `u32` triangle indices.
//!
//! A [`crate::TriangleSoup`] stores 3 full [`Vec3`]s (36 bytes) per triangle
//! and interpolates every shared edge crossing up to 4 times. An
//! [`IndexedMesh`] stores each crossing **once** (isosurface meshes average
//! ≈ 0.5 vertices per triangle, so ~18 bytes/triangle) and is what the
//! slab-sliding kernel ([`crate::mc::marching_cubes_indexed`]) emits.
//! [`IndexedMesh::to_soup`] is the thin conversion kept for existing
//! soup-consuming callers.

use crate::mesh::{weld_key, Aabb, CanonVertex, Triangle, TriangleSoup, Vec3};
use crate::weld::{MeshWelder, WeldStats};

/// A triangle mesh with deduplicated vertices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexedMesh {
    positions: Vec<Vec3>,
    /// Triangle corner indices into `positions`; length is a multiple of 3.
    indices: Vec<u32>,
}

impl IndexedMesh {
    /// Empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Preallocate for roughly `tris` triangles (vertex count estimated at
    /// the isosurface-typical ~0.5 vertices per triangle).
    pub fn with_capacity(tris: usize) -> Self {
        IndexedMesh {
            positions: Vec::with_capacity(tris / 2 + 1),
            indices: Vec::with_capacity(tris * 3),
        }
    }

    /// Number of triangles.
    #[inline]
    pub fn len(&self) -> usize {
        self.indices.len() / 3
    }

    /// Whether the mesh holds no triangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of (deduplicated) vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Vertex positions.
    #[inline]
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Mutable vertex positions — for in-place deformation (e.g. the
    /// SurfaceNets smoothing passes) that never changes connectivity.
    #[inline]
    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.positions
    }

    /// Triangle corner indices (3 per triangle).
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Append a vertex, returning its index.
    #[inline]
    pub fn push_vertex(&mut self, p: Vec3) -> u32 {
        let i = self.positions.len() as u32;
        self.positions.push(p);
        i
    }

    /// Append one triangle by vertex indices.
    #[inline]
    pub fn push_triangle(&mut self, a: u32, b: u32, c: u32) {
        debug_assert!(
            (a as usize) < self.positions.len()
                && (b as usize) < self.positions.len()
                && (c as usize) < self.positions.len()
        );
        self.indices.extend_from_slice(&[a, b, c]);
    }

    /// Materialize triangle `i`.
    #[inline]
    pub fn triangle(&self, i: usize) -> Triangle {
        let base = 3 * i;
        Triangle {
            v: [
                self.positions[self.indices[base] as usize],
                self.positions[self.indices[base + 1] as usize],
                self.positions[self.indices[base + 2] as usize],
            ],
        }
    }

    /// Iterate materialized triangles.
    pub fn triangles(&self) -> impl ExactSizeIterator<Item = Triangle> + '_ {
        (0..self.len()).map(|i| self.triangle(i))
    }

    /// Drop all geometry, keeping allocations.
    pub fn clear(&mut self) {
        self.positions.clear();
        self.indices.clear();
    }

    /// Absorb `other`, rebasing its indices past this mesh's vertices.
    /// Vertices are **not** re-welded across the seam — merge is O(other).
    /// Use [`IndexedMesh::merge_welded`] when the seam must close.
    pub fn merge(&mut self, other: IndexedMesh) {
        let base = self.positions.len() as u32;
        self.positions.extend(other.positions);
        self.indices
            .extend(other.indices.into_iter().map(|i| i + base));
    }

    /// Absorb `other` through `welder`, fusing vertices that quantize to the
    /// same [`crate::mesh::weld_key`] with vertices already welded into this
    /// mesh. The welder must have produced every prior triangle of `self`
    /// (start from an empty mesh and a fresh [`MeshWelder`]); triangles the
    /// weld collapses are dropped and counted, not emitted.
    pub fn merge_welded(&mut self, other: &IndexedMesh, welder: &mut MeshWelder) {
        welder.append(self, other);
    }

    /// Re-weld this mesh from scratch: fuse all quantized-duplicate vertices
    /// and drop exactly-degenerate (collapsed) triangles. Deterministic —
    /// first occurrence in triangle-stream order keeps its position — so
    /// equal meshes always weld to equal meshes.
    pub fn welded(&self) -> (IndexedMesh, WeldStats) {
        let mut out = IndexedMesh::with_capacity(self.len());
        let mut welder = MeshWelder::new();
        welder.append(&mut out, self);
        let stats = welder.finish(&out);
        (out, stats)
    }

    /// Canonical triangle multiset of this mesh — same quantization and
    /// ordering rule as [`crate::mesh::canonical_triangles`], without
    /// materializing a soup. Two meshes describe the same surface iff their
    /// canonical multisets are equal.
    pub fn canonical_triangles(&self) -> Vec<[CanonVertex; 3]> {
        let keys: Vec<CanonVertex> = self.positions.iter().map(|&p| weld_key(p)).collect();
        let mut out: Vec<[CanonVertex; 3]> = self
            .indices
            .chunks_exact(3)
            .map(|tri| {
                let mut ks = [
                    keys[tri[0] as usize],
                    keys[tri[1] as usize],
                    keys[tri[2] as usize],
                ];
                ks.sort_unstable();
                ks
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        self.triangles().map(|t| t.area() as f64).sum()
    }

    /// Bounding box of all referenced vertices.
    pub fn bounds(&self) -> Aabb {
        let mut b = Aabb::empty();
        for &p in &self.positions {
            b.grow(p);
        }
        b
    }

    /// Extract the sub-mesh of triangles satisfying `keep`, compacting the
    /// vertex table to only the vertices those triangles reference (indices
    /// are renumbered; relative triangle and vertex order is preserved, so
    /// the same filter applied to equal meshes yields equal meshes). Used by
    /// the query server's region-restricted responses.
    pub fn filter_triangles(&self, mut keep: impl FnMut(&Triangle) -> bool) -> IndexedMesh {
        let mut remap = vec![u32::MAX; self.positions.len()];
        let mut out = IndexedMesh::new();
        for (i, tri) in self.triangles().enumerate() {
            if !keep(&tri) {
                continue;
            }
            let base = 3 * i;
            let mut corners = [0u32; 3];
            for (c, corner) in corners.iter_mut().enumerate() {
                let v = self.indices[base + c] as usize;
                if remap[v] == u32::MAX {
                    remap[v] = out.push_vertex(self.positions[v]);
                }
                *corner = remap[v];
            }
            out.push_triangle(corners[0], corners[1], corners[2]);
        }
        out
    }

    /// Triangles intersecting the axis-aligned box `[lo, hi]` (kept iff the
    /// triangle's own bounding box overlaps it).
    pub fn filter_region(&self, lo: Vec3, hi: Vec3) -> IndexedMesh {
        self.filter_triangles(|t| {
            let mut b = Aabb::empty();
            for &v in &t.v {
                b.grow(v);
            }
            b.lo.x <= hi.x
                && b.hi.x >= lo.x
                && b.lo.y <= hi.y
                && b.hi.y >= lo.y
                && b.lo.z <= hi.z
                && b.hi.z >= lo.z
        })
    }

    /// Append every triangle to `soup` (exact soup the reference kernel
    /// would have produced, when the mesh came from the slab kernel).
    pub fn append_to_soup(&self, soup: &mut TriangleSoup) {
        soup.reserve(self.len());
        for t in self.triangles() {
            soup.push(t);
        }
    }

    /// Convert to an unindexed soup.
    pub fn to_soup(&self) -> TriangleSoup {
        let mut soup = TriangleSoup::with_capacity(self.len());
        self.append_to_soup(&mut soup);
        soup
    }

    /// Export as a Wavefront OBJ file with **welded** vertices — unlike
    /// [`TriangleSoup::write_obj`], the file is ~3× smaller and viewers see
    /// true shared-vertex connectivity.
    pub fn write_obj(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            out,
            "# oociso isosurface: {} vertices, {} triangles",
            self.num_vertices(),
            self.len()
        )?;
        for p in &self.positions {
            writeln!(out, "v {} {} {}", p.x, p.y, p.z)?;
        }
        for t in self.indices.chunks_exact(3) {
            writeln!(out, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
        }
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad() -> IndexedMesh {
        let mut m = IndexedMesh::new();
        let a = m.push_vertex(Vec3::ZERO);
        let b = m.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let c = m.push_vertex(Vec3::new(1.0, 1.0, 0.0));
        let d = m.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        m.push_triangle(a, b, c);
        m.push_triangle(a, c, d);
        m
    }

    #[test]
    fn accounting_and_conversion() {
        let m = quad();
        assert_eq!(m.len(), 2);
        assert_eq!(m.num_vertices(), 4);
        assert!((m.area() - 1.0).abs() < 1e-6);
        let soup = m.to_soup();
        assert_eq!(soup.len(), 2);
        assert!((soup.area() - 1.0).abs() < 1e-6);
        assert_eq!(soup.triangles()[0].v[1], Vec3::new(1.0, 0.0, 0.0));
        let b = m.bounds();
        assert_eq!(b.lo, Vec3::ZERO);
        assert_eq!(b.hi, Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn merge_rebases_indices() {
        let mut a = quad();
        let b = quad();
        a.merge(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.num_vertices(), 8);
        assert_eq!(a.indices()[6], 4); // second quad's first corner rebased
        assert!((a.area() - 2.0).abs() < 1e-6);
        // merged mesh materializes the same triangles as two separate quads
        let t = a.triangle(2);
        assert_eq!(t.v[0], Vec3::ZERO);
    }

    #[test]
    fn filter_compacts_vertices_and_preserves_order() {
        let m = quad();
        // keep only the second triangle (a, c, d): vertex b must vanish
        let mut first = true;
        let kept = m.filter_triangles(|_| !std::mem::replace(&mut first, false));
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.num_vertices(), 3, "unreferenced vertex not dropped");
        let t = kept.triangle(0);
        assert_eq!(t.v[0], Vec3::ZERO);
        assert_eq!(t.v[1], Vec3::new(1.0, 1.0, 0.0));
        assert_eq!(t.v[2], Vec3::new(0.0, 1.0, 0.0));
        // keep-all filter is the identity (same positions, same indices)
        let all = m.filter_triangles(|_| true);
        assert_eq!(all.positions(), m.positions());
        assert_eq!(all.indices(), m.indices());
        // region covering only the lower-left corner keeps both unit-quad
        // triangles (their bounding boxes touch it)
        let r = m.filter_region(Vec3::ZERO, Vec3::new(0.1, 0.1, 0.0));
        assert_eq!(r.len(), 2);
        // a region far away keeps nothing
        let far = m.filter_region(Vec3::new(5.0, 5.0, 5.0), Vec3::new(6.0, 6.0, 6.0));
        assert!(far.is_empty());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = quad();
        let cap = m.positions.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.num_vertices(), 0);
        assert_eq!(m.positions.capacity(), cap);
    }

    #[test]
    fn obj_export_welds_vertices() {
        let m = quad();
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_indexed_{}.obj", std::process::id()));
        m.write_obj(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("v ")).count(), 4);
        assert_eq!(text.lines().filter(|l| l.starts_with("f ")).count(), 2);
        assert!(text.contains("f 1 3 4"));
        std::fs::remove_file(&p).ok();
    }
}
