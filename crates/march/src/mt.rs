//! Marching Tetrahedra over the Kuhn 6-tetrahedra cube decomposition.
//!
//! An unambiguous alternative extractor (the paper: "any of the several
//! variations of the Marching Cubes algorithm can be used"). Every cube is
//! split into six tetrahedra around the 0–6 main diagonal; tetrahedra have no
//! ambiguous configurations, and the Kuhn decomposition tiles space
//! consistently (opposite cube faces receive parallel diagonals), so the
//! resulting mesh is watertight. MT emits more, smaller triangles than MC —
//! quantified by the extraction ablation bench.

use crate::mesh::{Triangle, TriangleSoup, Vec3};
use crate::tables::CORNERS;
use oociso_volume::{ScalarValue, Volume};

/// The six tetrahedra of the Kuhn decomposition (corner indices), each
/// containing the main diagonal (0, 6).
const TETS: [[usize; 4]; 6] = [
    [0, 5, 1, 6],
    [0, 1, 2, 6],
    [0, 2, 3, 6],
    [0, 3, 7, 6],
    [0, 7, 4, 6],
    [0, 4, 5, 6],
];

/// Extract the isosurface with marching tetrahedra; same conventions as
/// [`crate::marching_cubes`] (normals point toward the `≥ iso` side).
pub fn marching_tetrahedra<S: ScalarValue>(
    vol: &Volume<S>,
    iso: f32,
    origin: Vec3,
    scale: Vec3,
    soup: &mut TriangleSoup,
) -> u64 {
    let dims = vol.dims();
    let mut triangles = 0u64;
    for cz in 0..dims.nz.saturating_sub(1) {
        for cy in 0..dims.ny.saturating_sub(1) {
            for cx in 0..dims.nx.saturating_sub(1) {
                let mut vals = [0.0f32; 8];
                let mut pos = [Vec3::ZERO; 8];
                let mut below = false;
                let mut above = false;
                for (i, &(dx, dy, dz)) in CORNERS.iter().enumerate() {
                    let v = vol.get(cx + dx, cy + dy, cz + dz).to_f32();
                    vals[i] = v;
                    if v < iso {
                        below = true;
                    } else {
                        above = true;
                    }
                    pos[i] = Vec3::new(
                        origin.x + (cx + dx) as f32 * scale.x,
                        origin.y + (cy + dy) as f32 * scale.y,
                        origin.z + (cz + dz) as f32 * scale.z,
                    );
                }
                if !(below && above) {
                    continue;
                }
                for tet in &TETS {
                    triangles += march_tet(
                        [pos[tet[0]], pos[tet[1]], pos[tet[2]], pos[tet[3]]],
                        [vals[tet[0]], vals[tet[1]], vals[tet[2]], vals[tet[3]]],
                        iso,
                        soup,
                    );
                }
            }
        }
    }
    triangles
}

/// Interpolate the crossing between two tet corners, canonicalized by position
/// so shared edges match bit-for-bit across tets and cells.
#[inline]
fn interp(pa: Vec3, va: f32, pb: Vec3, vb: f32, iso: f32) -> Vec3 {
    let ka = (pa.z, pa.y, pa.x);
    let kb = (pb.z, pb.y, pb.x);
    let (pa, va, pb, vb) = if kb < ka {
        (pb, vb, pa, va)
    } else {
        (pa, va, pb, vb)
    };
    let t = if (vb - va).abs() > 0.0 {
        ((iso - va) / (vb - va)).clamp(0.0, 1.0)
    } else {
        0.5
    };
    pa + (pb - pa) * t
}

/// Emit 0–2 triangles for one explicit tetrahedron; returns the count.
///
/// This is the primitive beneath both the structured marching-tetrahedra
/// pass and the unstructured-mesh extraction ([`crate::unstructured`]).
/// Crossing points are canonicalized by position, so tets sharing a face —
/// within one mesh or across cluster boundaries — produce bit-identical
/// vertices.
pub fn march_tet(p: [Vec3; 4], v: [f32; 4], iso: f32, soup: &mut TriangleSoup) -> u64 {
    let mut inside: u8 = 0;
    for (i, &vi) in v.iter().enumerate() {
        if vi < iso {
            inside |= 1 << i;
        }
    }
    if inside == 0 || inside == 0b1111 {
        return 0;
    }
    let ins: Vec<usize> = (0..4).filter(|&i| inside & (1 << i) != 0).collect();
    let outs: Vec<usize> = (0..4).filter(|&i| inside & (1 << i) == 0).collect();

    let mut emit = |a: Vec3, b: Vec3, c: Vec3, inside_ref: Vec3| -> u64 {
        let mut tri = Triangle { v: [a, b, c] };
        // orient the normal away from the inside (< iso) region
        let away = tri.centroid() - inside_ref;
        if tri.raw_normal().dot(away) < 0.0 {
            tri.v.swap(1, 2);
        }
        soup.push(tri);
        1
    };

    match ins.len() {
        1 => {
            let i = ins[0];
            let a = interp(p[i], v[i], p[outs[0]], v[outs[0]], iso);
            let b = interp(p[i], v[i], p[outs[1]], v[outs[1]], iso);
            let c = interp(p[i], v[i], p[outs[2]], v[outs[2]], iso);
            emit(a, b, c, p[i])
        }
        3 => {
            let o = outs[0];
            let a = interp(p[ins[0]], v[ins[0]], p[o], v[o], iso);
            let b = interp(p[ins[1]], v[ins[1]], p[o], v[o], iso);
            let c = interp(p[ins[2]], v[ins[2]], p[o], v[o], iso);
            let inside_ref = (p[ins[0]] + p[ins[1]] + p[ins[2]]) / 3.0;
            emit(a, b, c, inside_ref)
        }
        2 => {
            // quad between the two inside and two outside corners
            let (i0, i1) = (ins[0], ins[1]);
            let (o0, o1) = (outs[0], outs[1]);
            let q00 = interp(p[i0], v[i0], p[o0], v[o0], iso);
            let q01 = interp(p[i0], v[i0], p[o1], v[o1], iso);
            let q10 = interp(p[i1], v[i1], p[o0], v[o0], iso);
            let q11 = interp(p[i1], v[i1], p[o1], v[o1], iso);
            let inside_ref = (p[i0] + p[i1]) * 0.5;
            emit(q00, q01, q11, inside_ref) + emit(q00, q11, q10, inside_ref)
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::marching_cubes;
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::Dims3;
    use std::collections::HashMap;

    fn key(v: Vec3) -> (i64, i64, i64) {
        let q = 1_048_576.0;
        (
            (v.x * q).round() as i64,
            (v.y * q).round() as i64,
            (v.z * q).round() as i64,
        )
    }

    #[test]
    fn sphere_watertight_under_mt() {
        let f = SphereField::centered(0.3, 128.0);
        let vol: Volume<f32> = f.sample(Dims3::cube(20));
        let mut soup = TriangleSoup::new();
        marching_tetrahedra(&vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        assert!(soup.len() > 100);
        let mut edge_count: HashMap<_, u32> = HashMap::new();
        for t in soup.triangles() {
            if t.is_degenerate() {
                continue; // MT can emit zero-area slivers at exact crossings
            }
            for i in 0..3 {
                let a = key(t.v[i]);
                let b = key(t.v[(i + 1) % 3]);
                let e = if a < b { (a, b) } else { (b, a) };
                *edge_count.entry(e).or_insert(0) += 1;
            }
        }
        let bad = edge_count.values().filter(|&&c| c != 2).count();
        assert_eq!(bad, 0, "{bad} non-manifold edges of {}", edge_count.len());
    }

    #[test]
    fn mt_area_matches_mc_area() {
        let f = SphereField::centered(0.32, 100.0);
        let vol: Volume<f32> = f.sample(Dims3::cube(24));
        let mut mc_soup = TriangleSoup::new();
        marching_cubes(
            &vol,
            100.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mc_soup,
        );
        let mut mt_soup = TriangleSoup::new();
        marching_tetrahedra(
            &vol,
            100.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mt_soup,
        );
        let rel = (mc_soup.area() - mt_soup.area()).abs() / mc_soup.area();
        assert!(rel < 0.03, "MC {} vs MT {}", mc_soup.area(), mt_soup.area());
        // MT refines: more triangles for the same surface
        assert!(mt_soup.len() > mc_soup.len());
    }

    #[test]
    fn mt_normals_oriented() {
        let f = SphereField::centered(0.3, 128.0);
        let n = 20;
        let vol: Volume<f32> = f.sample(Dims3::cube(n));
        let mut soup = TriangleSoup::new();
        marching_tetrahedra(&vol, 128.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        let center = Vec3::new(
            (n - 1) as f32 / 2.0,
            (n - 1) as f32 / 2.0,
            (n - 1) as f32 / 2.0,
        );
        let mut agree = 0usize;
        let mut total = 0usize;
        for t in soup.triangles() {
            if t.is_degenerate() {
                continue;
            }
            total += 1;
            if t.normal().dot(center - t.centroid()) > 0.0 {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.99,
            "{agree} of {total} normals inward"
        );
    }

    #[test]
    fn constant_volume_emits_nothing() {
        let vol = Volume::<u8>::filled(Dims3::cube(6), 3);
        let mut soup = TriangleSoup::new();
        let n = marching_tetrahedra(&vol, 100.0, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        assert_eq!(n, 0);
    }
}
