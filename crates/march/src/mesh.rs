//! Minimal geometry types for isosurface meshes.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 3-component `f32` vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector (zero stays zero).
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l > 0.0 {
            self / l
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}
impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}
impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}
impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}
impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}
impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// One isosurface triangle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Triangle {
    /// The three vertices, wound so [`Triangle::normal`] points toward the
    /// `≥ isovalue` side of the field.
    pub v: [Vec3; 3],
}

impl Triangle {
    /// Unnormalized face normal (`(v1-v0) × (v2-v0)`).
    #[inline]
    pub fn raw_normal(&self) -> Vec3 {
        (self.v[1] - self.v[0]).cross(self.v[2] - self.v[0])
    }

    /// Unit face normal.
    pub fn normal(&self) -> Vec3 {
        self.raw_normal().normalized()
    }

    /// Triangle area.
    pub fn area(&self) -> f32 {
        self.raw_normal().length() * 0.5
    }

    /// Centroid.
    pub fn centroid(&self) -> Vec3 {
        (self.v[0] + self.v[1] + self.v[2]) / 3.0
    }

    /// Whether the triangle has (near-)zero area.
    pub fn is_degenerate(&self) -> bool {
        self.area() < 1e-12
    }
}

/// Axis-aligned bounding box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub lo: Vec3,
    pub hi: Vec3,
}

impl Aabb {
    /// The empty box (inverted bounds).
    pub fn empty() -> Self {
        Aabb {
            lo: Vec3::new(f32::INFINITY, f32::INFINITY, f32::INFINITY),
            hi: Vec3::new(f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY),
        }
    }

    /// Expand to include a point.
    pub fn grow(&mut self, p: Vec3) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Box center.
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    /// Diagonal vector.
    pub fn extent(&self) -> Vec3 {
        self.hi - self.lo
    }
}

/// A bag of triangles (positions only; normals derived per face).
#[derive(Clone, Debug, Default)]
pub struct TriangleSoup {
    tris: Vec<Triangle>,
}

impl TriangleSoup {
    /// Empty soup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Preallocate.
    pub fn with_capacity(n: usize) -> Self {
        TriangleSoup {
            tris: Vec::with_capacity(n),
        }
    }

    /// Append one triangle.
    #[inline]
    pub fn push(&mut self, t: Triangle) {
        self.tris.push(t);
    }

    /// Number of triangles.
    pub fn len(&self) -> usize {
        self.tris.len()
    }

    /// Whether the soup holds no triangles.
    pub fn is_empty(&self) -> bool {
        self.tris.is_empty()
    }

    /// Triangle slice.
    pub fn triangles(&self) -> &[Triangle] {
        &self.tris
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        self.tris.iter().map(|t| t.area() as f64).sum()
    }

    /// Bounding box of all vertices.
    pub fn bounds(&self) -> Aabb {
        let mut b = Aabb::empty();
        for t in &self.tris {
            for &v in &t.v {
                b.grow(v);
            }
        }
        b
    }

    /// Reserve room for `n` more triangles.
    pub fn reserve(&mut self, n: usize) {
        self.tris.reserve(n);
    }

    /// Absorb another soup.
    pub fn append(&mut self, mut other: TriangleSoup) {
        self.tris.append(&mut other.tris);
    }

    /// Copy all of `other`'s triangles in, without consuming it — lets
    /// callers merge many soups with one up-front [`TriangleSoup::reserve`]
    /// instead of cloning each part first.
    pub fn extend_from(&mut self, other: &TriangleSoup) {
        self.tris.extend_from_slice(&other.tris);
    }
}

impl TriangleSoup {
    /// Export as a Wavefront OBJ file (positions only, per-face normals are
    /// implicit). Vertices are written per triangle without welding — simple
    /// and loss-free; viewers handle it fine for meshes of this size.
    pub fn write_obj(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "# oociso isosurface: {} triangles", self.len())?;
        for t in &self.tris {
            for v in &t.v {
                writeln!(out, "v {} {} {}", v.x, v.y, v.z)?;
            }
        }
        for i in 0..self.tris.len() {
            let b = 3 * i + 1;
            writeln!(out, "f {} {} {}", b, b + 1, b + 2)?;
        }
        out.flush()
    }
}

/// Quantized vertex key used by [`weld_key`]: 2^20 steps per unit, exact for
/// grid-scale isosurface coordinates.
pub type CanonVertex = (i64, i64, i64);

/// Quantization factor behind [`weld_key`] (2^20 per unit).
const WELD_SCALE: f32 = 1_048_576.0;

/// The workspace's single vertex quantization rule: used by topology welding
/// ([`crate::topology::analyze`]) and by [`canonical_triangles`], so "same
/// welded vertex" and "same canonical triangle" can never diverge.
#[inline]
pub fn weld_key(v: Vec3) -> CanonVertex {
    (
        (v.x * WELD_SCALE).round() as i64,
        (v.y * WELD_SCALE).round() as i64,
        (v.z * WELD_SCALE).round() as i64,
    )
}

/// Canonical triangle multiset of a soup: each triangle's vertices quantized
/// and sorted, then the triangle list sorted. Two extractions produce the
/// same surface iff their canonical multisets are equal — this is the
/// comparator behind every kernel-equivalence test in the workspace.
pub fn canonical_triangles(soup: &TriangleSoup) -> Vec<[CanonVertex; 3]> {
    let mut out: Vec<[CanonVertex; 3]> = soup
        .triangles()
        .iter()
        .map(|t| {
            let mut ks = [weld_key(t.v[0]), weld_key(t.v[1]), weld_key(t.v[2])];
            ks.sort_unstable();
            ks
        })
        .collect();
    out.sort_unstable();
    out
}

/// Partition a canonical multiset into `(kept, collapsed)`: `collapsed`
/// counts the triangles whose quantized corners are not all distinct (keys
/// are sorted, so duplicates are adjacent). This is, by construction, the
/// set the welder ([`crate::weld::MeshWelder`]) drops — equivalence tests
/// compare a welded extraction against `kept` and its drop counter against
/// `collapsed` instead of re-deriving the predicate.
pub fn split_collapsed(canon: Vec<[CanonVertex; 3]>) -> (Vec<[CanonVertex; 3]>, usize) {
    let total = canon.len();
    let kept: Vec<[CanonVertex; 3]> = canon
        .into_iter()
        .filter(|ks| ks[0] != ks[1] && ks[1] != ks[2])
        .collect();
    let collapsed = total - kept.len();
    (kept, collapsed)
}

impl FromIterator<Triangle> for TriangleSoup {
    fn from_iter<I: IntoIterator<Item = Triangle>>(iter: I) -> Self {
        TriangleSoup {
            tris: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(a.dot(b), 0.0);
        assert_eq!((a + b).length(), 2.0f32.sqrt());
        assert_eq!((a * 3.0).x, 3.0);
        assert_eq!((-a).x, -1.0);
    }

    #[test]
    fn normalize_zero_safe() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let n = Vec3::new(0.0, 0.0, 5.0).normalized();
        assert!((n.z - 1.0).abs() < 1e-6);
    }

    #[test]
    fn triangle_area_and_normal() {
        let t = Triangle {
            v: [
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ],
        };
        assert!((t.area() - 0.5).abs() < 1e-6);
        assert_eq!(t.normal(), Vec3::new(0.0, 0.0, 1.0));
        assert!(!t.is_degenerate());
        let d = Triangle {
            v: [Vec3::ZERO, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)],
        };
        assert!(d.is_degenerate());
    }

    #[test]
    fn soup_accounting() {
        let mut s = TriangleSoup::new();
        assert!(s.is_empty());
        s.push(Triangle {
            v: [
                Vec3::ZERO,
                Vec3::new(2.0, 0.0, 0.0),
                Vec3::new(0.0, 2.0, 0.0),
            ],
        });
        assert_eq!(s.len(), 1);
        assert!((s.area() - 2.0).abs() < 1e-6);
        let b = s.bounds();
        assert_eq!(b.lo, Vec3::ZERO);
        assert_eq!(b.hi, Vec3::new(2.0, 2.0, 0.0));
        let mut s2 = TriangleSoup::new();
        s2.extend_from(&s); // borrow-based merge: s stays usable
        s2.append(s);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.triangles()[0], s2.triangles()[1]);
    }

    #[test]
    fn obj_export_well_formed() {
        let mut s = TriangleSoup::new();
        s.push(Triangle {
            v: [
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ],
        });
        s.push(Triangle {
            v: [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ],
        });
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_mesh_{}.obj", std::process::id()));
        s.write_obj(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("v ")).count(), 6);
        assert_eq!(text.lines().filter(|l| l.starts_with("f ")).count(), 2);
        assert!(text.contains("f 4 5 6"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn aabb_grow() {
        let mut b = Aabb::empty();
        b.grow(Vec3::new(1.0, 2.0, 3.0));
        b.grow(Vec3::new(-1.0, 0.0, 5.0));
        assert_eq!(b.lo, Vec3::new(-1.0, 0.0, 3.0));
        assert_eq!(b.hi, Vec3::new(1.0, 2.0, 5.0));
        assert_eq!(b.center(), Vec3::new(0.0, 1.0, 4.0));
    }
}
