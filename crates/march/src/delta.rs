//! Collapse-record deltas between adjacent LOD levels.
//!
//! A [`crate::LodChain`] refines coarse→fine during a progressive serve, and
//! consecutive levels share most vertex *positions*: decimation removes
//! vertices but the survivors keep their coordinates bit-for-bit. A
//! [`MeshDelta`] encodes the finer mesh against the coarser one already on
//! the client — each vertex slot is either a reference into the previous
//! level's vertex array or a literal position — so a refinement chunk costs
//! 4 bytes per shared vertex instead of 12, with the index buffer sent
//! verbatim. Reconstruction is exact: [`MeshDelta::apply`] rebuilds the
//! finer mesh bit-identically to the input of [`MeshDelta::between`].
//!
//! Positions are matched by *bit pattern*, never by epsilon, so the codec is
//! deterministic and lossless even for NaN payloads; in the worst case (no
//! shared positions) every slot is a literal and the delta degenerates to
//! roughly the full encoding plus one bit per vertex.

use std::collections::HashMap;

use crate::indexed::IndexedMesh;
use crate::mesh::Vec3;

/// A finer mesh encoded against the previous (coarser) level.
///
/// `reused[i]` says whether vertex slot `i` comes from the previous mesh
/// (consume the next entry of `refs`) or is new (consume the next entry of
/// `literals`). Indices are the finer mesh's index buffer, unchanged.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MeshDelta {
    /// One flag per vertex slot of the finer mesh, in slot order.
    pub reused: Vec<bool>,
    /// For each `true` flag, the source vertex in the previous mesh.
    pub refs: Vec<u32>,
    /// For each `false` flag, the literal position.
    pub literals: Vec<Vec3>,
    /// The finer mesh's index buffer (multiple of 3, each `< reused.len()`).
    pub indices: Vec<u32>,
}

fn key(p: &Vec3) -> (u32, u32, u32) {
    (p.x.to_bits(), p.y.to_bits(), p.z.to_bits())
}

impl MeshDelta {
    /// Encode `next` against `prev`. Always succeeds; vertices of `next`
    /// whose bit-exact position also occurs in `prev` become references
    /// (first occurrence wins), everything else is a literal.
    pub fn between(prev: &IndexedMesh, next: &IndexedMesh) -> MeshDelta {
        let mut by_pos: HashMap<(u32, u32, u32), u32> = HashMap::with_capacity(prev.num_vertices());
        for (i, p) in prev.positions().iter().enumerate() {
            by_pos.entry(key(p)).or_insert(i as u32);
        }
        let mut delta = MeshDelta {
            reused: Vec::with_capacity(next.num_vertices()),
            refs: Vec::new(),
            literals: Vec::new(),
            indices: next.indices().to_vec(),
        };
        for p in next.positions() {
            match by_pos.get(&key(p)) {
                Some(&src) => {
                    delta.reused.push(true);
                    delta.refs.push(src);
                }
                None => {
                    delta.reused.push(false);
                    delta.literals.push(*p);
                }
            }
        }
        delta
    }

    /// Number of vertex slots in the finer mesh this delta reconstructs.
    pub fn num_vertices(&self) -> usize {
        self.reused.len()
    }

    /// Whether the flag/ref/literal stream is internally consistent (the
    /// wire decoder guarantees this by construction; hand-built deltas may
    /// not be).
    fn consistent(&self) -> bool {
        let reused = self.reused.iter().filter(|&&r| r).count();
        reused == self.refs.len()
            && self.reused.len() - reused == self.literals.len()
            && self.indices.len().is_multiple_of(3)
    }

    /// Reconstruct the finer mesh. Returns `None` if the delta is
    /// inconsistent, a reference points past `prev`'s vertices, or an index
    /// points past the reconstructed vertex count — a torn or hostile delta
    /// never yields a half-applied mesh.
    pub fn apply(&self, prev: &IndexedMesh) -> Option<IndexedMesh> {
        if !self.consistent() {
            return None;
        }
        let nvert = self.reused.len();
        let mut mesh = IndexedMesh::new();
        let (mut nref, mut nlit) = (0usize, 0usize);
        for &reused in &self.reused {
            let p = if reused {
                let src = self.refs[nref] as usize;
                nref += 1;
                *prev.positions().get(src)?
            } else {
                let p = self.literals[nlit];
                nlit += 1;
                p
            };
            mesh.push_vertex(p);
        }
        for tri in self.indices.chunks_exact(3) {
            if tri.iter().any(|&i| i as usize >= nvert) {
                return None;
            }
            mesh.push_triangle(tri[0], tri[1], tri[2]);
        }
        Some(mesh)
    }

    /// Serialized size of this delta's variable body on the wire (bitmap +
    /// refs + literals + indices, excluding fixed headers) — what the server
    /// compares against the full encoding before choosing per chunk.
    pub fn wire_bytes(&self) -> usize {
        self.reused.len().div_ceil(8)
            + self.refs.len() * 4
            + self.literals.len() * 12
            + self.indices.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decimate::{decimate_to_ratio, LodChain};
    use crate::mc::{marching_cubes_indexed, SlabScratch};
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::{Dims3, Volume};

    fn sphere_mesh() -> IndexedMesh {
        let vol: Volume<f32> = SphereField::centered(0.33, 128.0).sample(Dims3::cube(15));
        let mut mesh = IndexedMesh::new();
        let mut scratch = SlabScratch::new();
        marching_cubes_indexed(
            &vol,
            128.5,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mesh,
            &mut scratch,
        );
        let (welded, _) = mesh.welded();
        welded
    }

    #[test]
    fn roundtrip_is_bit_exact_across_a_real_lod_chain() {
        let chain = LodChain::build(sphere_mesh(), &[0.5, 0.25]);
        // Refinement order: coarse → fine, exactly how a progressive serve
        // streams them.
        for w in chain.levels().windows(2) {
            let (fine, coarse) = (&w[0].mesh, &w[1].mesh);
            let delta = MeshDelta::between(coarse, fine);
            let rebuilt = delta.apply(coarse).expect("self-encoded delta applies");
            assert_eq!(rebuilt.positions().len(), fine.positions().len());
            for (a, b) in rebuilt.positions().iter().zip(fine.positions()) {
                assert_eq!(key(a), key(b), "positions must match bit-for-bit");
            }
            assert_eq!(rebuilt.indices(), fine.indices());
            // Decimation keeps surviving positions bit-exact, so the delta
            // must actually find shared vertices (that is its whole point).
            assert!(
                !delta.refs.is_empty(),
                "adjacent LOD levels share no vertices?"
            );
        }
    }

    #[test]
    fn decimated_level_delta_is_smaller_than_full_encoding() {
        let base = sphere_mesh();
        let (coarse, _) = decimate_to_ratio(&base, 0.4);
        let delta = MeshDelta::between(&coarse, &base);
        let full = base.num_vertices() * 12 + base.indices().len() * 4;
        assert!(
            delta.wire_bytes() < full,
            "delta {} >= full {}",
            delta.wire_bytes(),
            full
        );
    }

    #[test]
    fn disjoint_meshes_degenerate_to_literals() {
        let mut a = IndexedMesh::new();
        a.push_vertex(Vec3::new(0.0, 0.0, 0.0));
        a.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        a.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        a.push_triangle(0, 1, 2);
        let mut b = IndexedMesh::new();
        b.push_vertex(Vec3::new(5.0, 5.0, 5.0));
        b.push_vertex(Vec3::new(6.0, 5.0, 5.0));
        b.push_vertex(Vec3::new(5.0, 6.0, 5.0));
        b.push_triangle(0, 1, 2);
        let delta = MeshDelta::between(&a, &b);
        assert!(delta.refs.is_empty());
        assert_eq!(delta.literals.len(), 3);
        let rebuilt = delta.apply(&a).unwrap();
        assert_eq!(rebuilt.positions(), b.positions());
        assert_eq!(rebuilt.indices(), b.indices());
    }

    #[test]
    fn empty_meshes_roundtrip() {
        let empty = IndexedMesh::new();
        let delta = MeshDelta::between(&empty, &empty);
        let rebuilt = delta.apply(&empty).unwrap();
        assert!(rebuilt.is_empty());
        assert_eq!(rebuilt.num_vertices(), 0);
    }

    #[test]
    fn hostile_deltas_are_rejected_not_applied() {
        let mut prev = IndexedMesh::new();
        prev.push_vertex(Vec3::new(0.0, 0.0, 0.0));
        // Reference past the previous mesh.
        let d = MeshDelta {
            reused: vec![true],
            refs: vec![7],
            literals: vec![],
            indices: vec![],
        };
        assert!(d.apply(&prev).is_none());
        // Index past the reconstructed vertex count.
        let d = MeshDelta {
            reused: vec![false],
            refs: vec![],
            literals: vec![Vec3::ZERO],
            indices: vec![0, 0, 1],
        };
        assert!(d.apply(&prev).is_none());
        // Flag stream disagreeing with the ref/literal streams.
        let d = MeshDelta {
            reused: vec![true, false],
            refs: vec![0, 0],
            literals: vec![],
            indices: vec![],
        };
        assert!(d.apply(&prev).is_none());
    }
}
