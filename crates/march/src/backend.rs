//! The pluggable extraction-kernel seam.
//!
//! The cluster pipeline decodes active metacell records into dense
//! sub-volumes and hands each one to an [`ExtractionBackend`] — the only
//! contract a kernel must satisfy to ride the whole stack (streaming
//! pipeline, deterministic merge, weld, LOD pyramid, serving). Two backends
//! ship today: the slab-sliding Marching Cubes kernel
//! ([`crate::mc::marching_cubes_indexed`]) and Kitware-style SurfaceNets
//! ([`crate::surface_nets`]); dual contouring or sharp-feature variants slot
//! in behind the same trait with no further plumbing.
//!
//! # The block contract
//!
//! A *block* is a dense sample box (a metacell record, or the whole volume)
//! whose cells the backend owns exclusively: blocks partition the dataset's
//! cells, overlapping only by one shared sample layer per face. A backend
//! must emit, per call:
//!
//! * triangles whose vertices depend **only on the block's own samples** —
//!   so any decomposition of the volume into blocks yields the same surface;
//! * for kernels whose primitives span block seams (SurfaceNets quads around
//!   a crossing lattice edge touch up to four blocks), the vertex→cell
//!   mapping ([`BlockOutput::cells`]) and the deferred seam quads
//!   ([`BlockOutput::seams`]) that the merge stage resolves globally. The
//!   block that owns the *minimum* cell around a crossing edge emits it, so
//!   every seam quad is emitted exactly once cluster-wide.
//!
//! Backends are **not** required to produce identical geometry to each
//! other. The cross-backend guarantee is by *topology equivalence class*:
//! on a closed, well-resolved isosurface every backend must produce a
//! closed 2-manifold with the same Euler characteristic (proptested over
//! the field zoo in `tests/watertight.rs`).

use crate::indexed::IndexedMesh;
use crate::mc::{marching_cubes_indexed, McStats, SlabScratch};
use crate::mesh::Vec3;
use crate::surface_nets::{sn_block, SnScratch};
use oociso_volume::{Dims3, ScalarValue, Volume};

/// Which extraction kernel produces the surface. The enum is the unit of
/// dispatch everywhere outside `march` (extract options, cache keys, the
/// wire protocol); [`Backend::instance`] resolves it to the kernel object.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Backend {
    /// Slab-sliding indexed Marching Cubes — the reference-quality default.
    #[default]
    Mc,
    /// High-performance SurfaceNets (arXiv:2401.14906): one vertex per
    /// active cell, quad-dominant output, bounded smoothing. Fewer
    /// primitives and a cheaper kernel than MC at the same resolution.
    SurfaceNets,
}

impl Backend {
    /// Every backend, in wire-id order.
    pub const ALL: [Backend; 2] = [Backend::Mc, Backend::SurfaceNets];

    /// Stable wire/cache identifier (protocol v4, cache keys, stats rows).
    pub fn id(self) -> u8 {
        match self {
            Backend::Mc => 0,
            Backend::SurfaceNets => 1,
        }
    }

    /// Inverse of [`Backend::id`]; `None` for unknown identifiers (the
    /// serve layer maps those to `ERR_BAD_BACKEND`).
    pub fn from_id(id: u8) -> Option<Backend> {
        match id {
            0 => Some(Backend::Mc),
            1 => Some(Backend::SurfaceNets),
            _ => None,
        }
    }

    /// CLI/display name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Mc => "mc",
            Backend::SurfaceNets => "surfacenets",
        }
    }

    /// The kernel object for this backend (zero-sized, so the trait object
    /// costs one vtable pointer and no allocation).
    pub fn instance<S: ScalarValue>(self) -> &'static dyn ExtractionBackend<S> {
        match self {
            Backend::Mc => &McBackend,
            Backend::SurfaceNets => &SurfaceNetsBackend,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mc" => Ok(Backend::Mc),
            "surfacenets" | "sn" => Ok(Backend::SurfaceNets),
            other => Err(format!("unknown backend '{other}' (mc|surfacenets)")),
        }
    }
}

/// Where a block sits inside the global dataset — what a backend needs to
/// make globally consistent decisions (cell keys, seam ownership, volume
/// boundaries) from purely local samples.
#[derive(Clone, Copy, Debug)]
pub struct BlockDomain {
    /// Global sample coordinate of the block volume's `(0,0,0)` sample.
    /// Also the block's world origin: the pipeline's world space is global
    /// sample coordinates at unit scale.
    pub origin: (usize, usize, usize),
    /// Sample dims of the whole dataset, for volume-boundary decisions.
    pub volume_dims: Dims3,
}

impl BlockDomain {
    /// A domain covering a whole standalone volume.
    pub fn whole(dims: Dims3) -> BlockDomain {
        BlockDomain {
            origin: (0, 0, 0),
            volume_dims: dims,
        }
    }
}

/// Pack global cell coordinates into one key (21 bits per axis — ample for
/// any volume the index addresses).
#[inline]
pub fn pack_cell(x: usize, y: usize, z: usize) -> u64 {
    debug_assert!(x < (1 << 21) && y < (1 << 21) && z < (1 << 21));
    (x as u64) | ((y as u64) << 21) | ((z as u64) << 42)
}

/// Inverse of [`pack_cell`].
#[inline]
pub fn unpack_cell(key: u64) -> (usize, usize, usize) {
    const M: u64 = (1 << 21) - 1;
    (
        (key & M) as usize,
        ((key >> 21) & M) as usize,
        ((key >> 42) & M) as usize,
    )
}

/// One quad of a seam-spanning crossing edge, deferred to the global merge.
/// The quad's four corners are the SurfaceNets vertices of the four cells
/// around the lattice edge `base → base + e_axis`; their keys derive from
/// `base`, so the struct stays 16 bytes and sorts into a canonical,
/// partition-independent emission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeamQuad {
    /// Global coordinates of the edge's base sample.
    pub base: (u32, u32, u32),
    /// Lattice axis of the crossing edge (0 = x, 1 = y, 2 = z).
    pub axis: u8,
    /// Sign at the base sample: `true` when `sample(base) < iso`, which
    /// orients the quad so its normal faces the `≥ iso` side.
    pub inside_at_base: bool,
}

/// Per-axis perpendicular axis pair `(b, c)` with `(axis, b, c)`
/// right-handed, shared by interior-quad winding and seam resolution.
pub(crate) const PERP: [(usize, usize); 3] = [(1, 2), (2, 0), (0, 1)];

impl SeamQuad {
    /// The four cell keys around the edge, in winding order (normal toward
    /// the `≥ iso` side).
    pub fn cell_ring(&self) -> [u64; 4] {
        let p = [
            self.base.0 as usize,
            self.base.1 as usize,
            self.base.2 as usize,
        ];
        let (b, c) = PERP[self.axis as usize];
        let cell = |db: usize, dc: usize| {
            let mut q = p;
            q[b] -= 1 - db;
            q[c] -= 1 - dc;
            pack_cell(q[0], q[1], q[2])
        };
        // counter-clockwise around +axis; flip when the base sample is on
        // the ≥ iso side so normals match the MC convention
        if self.inside_at_base {
            [cell(0, 0), cell(1, 0), cell(1, 1), cell(0, 1)]
        } else {
            [cell(0, 0), cell(0, 1), cell(1, 1), cell(1, 0)]
        }
    }
}

/// What one backend call appends: the triangles it could resolve locally,
/// plus (for seam-spanning kernels) the vertex→cell map and deferred seam
/// quads the merge stage resolves once all blocks are in.
#[derive(Clone, Debug, Default)]
pub struct BlockOutput {
    /// Locally resolvable geometry, appended in deterministic block order.
    pub mesh: IndexedMesh,
    /// SurfaceNets: the packed global cell key of each mesh vertex,
    /// parallel to `mesh.positions()`. Empty for MC (whose vertices sit on
    /// lattice edges, not in cells).
    pub cells: Vec<u64>,
    /// SurfaceNets: crossing edges whose quad spans block seams, emitted by
    /// the block owning the minimum surrounding cell.
    pub seams: Vec<SeamQuad>,
}

impl BlockOutput {
    /// Fresh output with mesh capacity for ~`tris` triangles.
    pub fn with_capacity(tris: usize) -> BlockOutput {
        BlockOutput {
            mesh: IndexedMesh::with_capacity(tris),
            ..Default::default()
        }
    }
}

/// Reusable per-worker working memory for any backend — hold one per
/// worker thread, feed it to every block. Both members are lazily sized,
/// so the unused backend's half stays empty.
#[derive(Default)]
pub struct BackendScratch {
    /// Slab-MC layer masks and rolling edge caches.
    pub slab: SlabScratch,
    /// SurfaceNets sign plane and cell→vertex grid.
    pub sn: SnScratch,
}

impl BackendScratch {
    /// Fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One extraction kernel. `extract_block` appends the block's geometry to
/// `out` — see the module docs for the exact cross-block contract.
pub trait ExtractionBackend<S: ScalarValue>: Sync {
    /// Which [`Backend`] this kernel is.
    fn kind(&self) -> Backend;

    /// Extract `vol`'s cells at `iso`, appending to `out`.
    fn extract_block(
        &self,
        vol: &Volume<S>,
        iso: f32,
        domain: &BlockDomain,
        out: &mut BlockOutput,
        scratch: &mut BackendScratch,
    ) -> McStats;
}

/// The slab-sliding indexed Marching Cubes kernel behind the trait.
pub struct McBackend;

impl<S: ScalarValue> ExtractionBackend<S> for McBackend {
    fn kind(&self) -> Backend {
        Backend::Mc
    }

    fn extract_block(
        &self,
        vol: &Volume<S>,
        iso: f32,
        domain: &BlockDomain,
        out: &mut BlockOutput,
        scratch: &mut BackendScratch,
    ) -> McStats {
        let (x0, y0, z0) = domain.origin;
        marching_cubes_indexed(
            vol,
            iso,
            Vec3::new(x0 as f32, y0 as f32, z0 as f32),
            Vec3::new(1.0, 1.0, 1.0),
            &mut out.mesh,
            &mut scratch.slab,
        )
    }
}

/// The SurfaceNets kernel behind the trait (see [`crate::surface_nets`]).
pub struct SurfaceNetsBackend;

impl<S: ScalarValue> ExtractionBackend<S> for SurfaceNetsBackend {
    fn kind(&self) -> Backend {
        Backend::SurfaceNets
    }

    fn extract_block(
        &self,
        vol: &Volume<S>,
        iso: f32,
        domain: &BlockDomain,
        out: &mut BlockOutput,
        scratch: &mut BackendScratch,
    ) -> McStats {
        let (x0, y0, z0) = domain.origin;
        sn_block(
            vol,
            iso,
            domain,
            Vec3::new(x0 as f32, y0 as f32, z0 as f32),
            Vec3::new(1.0, 1.0, 1.0),
            out,
            &mut scratch.sn,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_id(b.id()), Some(b));
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
        }
        assert_eq!(Backend::from_id(2), None);
        assert!("marching".parse::<Backend>().is_err());
        assert_eq!("sn".parse::<Backend>().unwrap(), Backend::SurfaceNets);
        assert_eq!(Backend::default(), Backend::Mc);
    }

    #[test]
    fn cell_keys_round_trip() {
        for c in [
            (0, 0, 0),
            (1, 2, 3),
            (2047, 1, 131071),
            ((1 << 21) - 1, 5, 9),
        ] {
            assert_eq!(unpack_cell(pack_cell(c.0, c.1, c.2)), c);
        }
    }

    #[test]
    fn seam_ring_orientation_flips_with_sign() {
        let q = SeamQuad {
            base: (3, 4, 5),
            axis: 0,
            inside_at_base: true,
        };
        let r = SeamQuad {
            inside_at_base: false,
            ..q
        };
        let a = q.cell_ring();
        let b = r.cell_ring();
        // same cells, reversed cycle
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[3]);
        assert_eq!(a[2], b[2]);
        assert_eq!(a[3], b[1]);
        // the ring's cells are the four cells adjacent to the x edge at base
        let cells: Vec<_> = a.iter().map(|&k| unpack_cell(k)).collect();
        for (x, y, z) in &cells {
            assert_eq!(*x, 3);
            assert!((3..=4).contains(y) && (4..=5).contains(z));
        }
    }
}
