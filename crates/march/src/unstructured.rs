//! Isosurface extraction over unstructured tetrahedral clusters.
//!
//! The unstructured half of §4's claim ("Our algorithm can handle both
//! structured and unstructured grids"): a [`TetCluster`] is the metacell
//! analogue — self-contained, fixed-size-ish, with a `(vmin, vmax)` interval
//! — so the compact interval tree indexes clusters exactly as it indexes
//! metacells, and this module triangulates whatever clusters a query
//! retrieves.

use crate::mesh::{TriangleSoup, Vec3};
use crate::mt::march_tet;
use oociso_volume::tetmesh::{TetCluster, TetMesh};

/// Triangulate one cluster at `iso`; returns the triangle count.
pub fn extract_cluster(cluster: &TetCluster, iso: f32, soup: &mut TriangleSoup) -> u64 {
    let mut triangles = 0;
    for tet in &cluster.tets {
        let mut p = [Vec3::ZERO; 4];
        let mut v = [0.0f32; 4];
        for (k, &i) in tet.iter().enumerate() {
            let vert = cluster.vertices[i as usize];
            p[k] = Vec3::new(vert.pos[0], vert.pos[1], vert.pos[2]);
            v[k] = vert.value;
        }
        triangles += march_tet(p, v, iso, soup);
    }
    triangles
}

/// Reference path: triangulate a whole mesh directly (no clustering/index) —
/// the oracle the indexed pipeline is validated against.
pub fn extract_mesh(mesh: &TetMesh, iso: f32, soup: &mut TriangleSoup) -> u64 {
    let mut triangles = 0;
    for i in 0..mesh.num_tets() {
        let tet = mesh.tet(i);
        let mut p = [Vec3::ZERO; 4];
        let mut v = [0.0f32; 4];
        for (k, &vi) in tet.iter().enumerate() {
            let vert = mesh.vertex(vi);
            p[k] = Vec3::new(vert.pos[0], vert.pos[1], vert.pos[2]);
            v[k] = vert.value;
        }
        triangles += march_tet(p, v, iso, soup);
    }
    triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::{Dims3, Volume};

    fn sphere_mesh() -> TetMesh {
        // u8 sampling with a steep slope clamps the far field to 0, giving
        // genuinely constant corner clusters (the culling case); f32 fields
        // are smooth ramps with no exactly-constant regions.
        let f = SphereField {
            center: [0.5, 0.5, 0.5],
            radius: 0.25,
            level: 100.0,
            slope: 400.0,
        };
        let vol: Volume<u8> = f.sample(Dims3::cube(14));
        TetMesh::from_volume(&vol)
    }

    #[test]
    fn clustered_extraction_equals_whole_mesh() {
        let mesh = sphere_mesh();
        let mut whole = TriangleSoup::new();
        let n_whole = extract_mesh(&mesh, 100.0, &mut whole);
        let mut parts = TriangleSoup::new();
        let mut n_parts = 0;
        for c in mesh.clusters(48) {
            n_parts += extract_cluster(&c, 100.0, &mut parts);
        }
        assert_eq!(n_whole, n_parts);
        assert_eq!(whole.len(), parts.len());
        assert!((whole.area() - parts.area()).abs() < 1e-6 * whole.area());
        assert!(whole.len() > 100);
    }

    #[test]
    fn culling_constant_clusters_loses_nothing() {
        let mesh = sphere_mesh();
        let mut all = TriangleSoup::new();
        let mut kept = TriangleSoup::new();
        let mut culled = 0;
        for c in mesh.clusters(24) {
            extract_cluster(&c, 100.0, &mut all);
            if c.is_constant() {
                culled += 1;
            } else {
                extract_cluster(&c, 100.0, &mut kept);
            }
        }
        assert!(culled > 0, "corner clusters should be constant");
        assert_eq!(all.len(), kept.len());
    }

    #[test]
    fn interval_stabbing_selects_a_superset_of_active_clusters() {
        let mesh = sphere_mesh();
        for iso in [60.0f32, 100.0, 140.0] {
            let key = iso.key_for_test();
            for c in mesh.clusters(24) {
                let mut s = TriangleSoup::new();
                let produced = extract_cluster(&c, iso, &mut s) > 0;
                if produced {
                    let (lo, hi) = c.value_interval().unwrap();
                    assert!(
                        lo <= key && key <= hi,
                        "cluster {} produced triangles but interval misses iso",
                        c.id
                    );
                }
            }
        }
    }

    trait KeyForTest {
        fn key_for_test(self) -> u32;
    }
    impl KeyForTest for f32 {
        fn key_for_test(self) -> u32 {
            use oociso_volume::ScalarValue;
            self.key()
        }
    }
}
