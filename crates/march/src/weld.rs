//! Seam welding: fuse duplicated vertices across sub-mesh boundaries.
//!
//! The out-of-core pipeline triangulates every metacell (and every cluster
//! node) independently, so a merged [`IndexedMesh`] carries one copy of each
//! boundary crossing **per side of the seam** and the surface is watertight
//! only per metacell. [`MeshWelder`] is the deterministic hash join that
//! repairs this: vertices are keyed by [`weld_key`] — the workspace's single
//! quantization rule, shared with [`crate::topology`] and
//! [`crate::mesh::canonical_triangles`] — and every key keeps its **first
//! occurrence in triangle-stream order** as the representative. Because the
//! join depends only on the concatenated triangle stream, welding the same
//! stream split into any sequence of parts (per record, per worker chunk,
//! per node) produces byte-identical output, which is what keeps the
//! streaming and batch extraction paths bit-equal after welding.
//!
//! Quantized welding can collapse a triangle whose crossings coincide (an
//! isosurface passing exactly through a cell corner emits several crossings
//! at the same lattice point): such exactly-degenerate triangles are dropped
//! and counted rather than emitted as zero-area slivers.

use crate::indexed::IndexedMesh;
use crate::mesh::{weld_key, CanonVertex};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash (the multiply-rotate hash rustc itself uses for interning): the
/// weld join hashes a few small fixed-size keys per triangle, where the
/// default SipHash's DoS resistance costs several times the whole join —
/// these keys are derived from mesh geometry, not attacker-controlled input.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Counters describing one weld pass (or, summed, several).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WeldStats {
    /// Vertices across all appended input parts.
    pub input_vertices: u64,
    /// Distinct welded vertices emitted.
    pub output_vertices: u64,
    /// Triangles across all appended input parts.
    pub input_triangles: u64,
    /// Triangles dropped because welding collapsed two or more of their
    /// corners onto the same quantized vertex (exactly zero area).
    pub degenerate_dropped: u64,
    /// Boundary edges (odd face count) of the *input* under per-part vertex
    /// identity — every metacell/node seam edge counts here.
    pub boundary_edges_before: u64,
    /// Boundary edges of the welded output. Zero for a closed surface.
    pub boundary_edges_after: u64,
}

impl WeldStats {
    /// Vertices eliminated by the weld.
    pub fn vertices_merged(&self) -> u64 {
        self.input_vertices.saturating_sub(self.output_vertices)
    }

    /// Seam edges the weld closed: boundary edges of the input that are
    /// interior edges of the output. Counted per open side, so a typical
    /// two-sided seam edge (one copy in each adjacent sub-mesh) contributes
    /// 2 — the number of open edges eliminated, not of distinct seams.
    pub fn seam_edges_closed(&self) -> u64 {
        self.boundary_edges_before
            .saturating_sub(self.boundary_edges_after)
    }

    /// Component-wise sum — aggregate counters over several weld stages
    /// (per-node welds plus the cross-node merge weld). The summed boundary
    /// gauges describe the stages' inputs/outputs added together, not any
    /// single mesh.
    pub fn merged(&self, other: &WeldStats) -> WeldStats {
        WeldStats {
            input_vertices: self.input_vertices + other.input_vertices,
            output_vertices: self.output_vertices + other.output_vertices,
            input_triangles: self.input_triangles + other.input_triangles,
            degenerate_dropped: self.degenerate_dropped + other.degenerate_dropped,
            boundary_edges_before: self.boundary_edges_before + other.boundary_edges_before,
            boundary_edges_after: self.boundary_edges_after + other.boundary_edges_after,
        }
    }
}

/// Boundary edges (odd face multiplicity) of an indexed triangle stream,
/// under plain vertex-index identity. Self-edges (`a == b`) are skipped.
///
/// Linear-time bucket counting instead of a hash or sort over the whole edge
/// list: edges bucket by their smaller endpoint (CSR-style count → prefix
/// sum → scatter), then each bucket — a handful of entries for any real
/// mesh — is sorted in place to count odd runs. This is what keeps seam
/// accounting from dominating the weld itself on big meshes.
fn boundary_edge_count(indices: &[u32], num_vertices: usize) -> u64 {
    if indices.is_empty() {
        return 0;
    }
    // pass 1: bucket sizes by smaller endpoint
    let mut starts = vec![0u32; num_vertices + 1];
    let each_edge = |f: &mut dyn FnMut(u32, u32)| {
        for tri in indices.chunks_exact(3) {
            for i in 0..3 {
                let (a, b) = (tri[i], tri[(i + 1) % 3]);
                if a != b {
                    if a < b {
                        f(a, b)
                    } else {
                        f(b, a)
                    }
                }
            }
        }
    };
    each_edge(&mut |lo, _hi| starts[lo as usize + 1] += 1);
    for i in 0..num_vertices {
        starts[i + 1] += starts[i];
    }
    // pass 2: scatter the larger endpoints into their buckets
    let total = starts[num_vertices] as usize;
    let mut others = vec![0u32; total];
    let mut cursor = starts.clone();
    each_edge(&mut |lo, hi| {
        let c = &mut cursor[lo as usize];
        others[*c as usize] = hi;
        *c += 1;
    });
    // pass 3: per-bucket odd-multiplicity runs
    let mut odd = 0u64;
    for v in 0..num_vertices {
        let bucket = &mut others[starts[v] as usize..starts[v + 1] as usize];
        bucket.sort_unstable();
        let mut i = 0usize;
        while i < bucket.len() {
            let mut j = i + 1;
            while j < bucket.len() && bucket[j] == bucket[i] {
                j += 1;
            }
            odd += ((j - i) % 2 == 1) as u64;
            i = j;
        }
    }
    odd
}

/// The deterministic hash-join welder behind [`IndexedMesh::merge_welded`].
///
/// One welder serves one output mesh: create it alongside an (empty) output,
/// [`MeshWelder::append`] every part in order, then [`MeshWelder::finish`]
/// for the stats. Vertices the input never references from a kept triangle
/// are not copied to the output, so a welded mesh has no orphan vertices.
#[derive(Debug, Default)]
pub struct MeshWelder {
    /// Quantized position → output vertex index (first occurrence wins).
    ids: HashMap<CanonVertex, u32, FxBuild>,
    input_vertices: u64,
    input_triangles: u64,
    degenerate_dropped: u64,
    /// Input boundary edges, accumulated per part at `append` (parts share
    /// no identity vertices, so part-local counts sum exactly).
    boundary_edges_before: u64,
}

impl MeshWelder {
    /// A fresh welder for a new output mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Weld `part`'s triangles onto `out`. Triangles keep their stream
    /// order; each quantized position is materialized in `out` at its first
    /// kept-triangle use; triangles whose corners collapse are dropped.
    pub fn append(&mut self, out: &mut IndexedMesh, part: &IndexedMesh) {
        let positions = part.positions();
        let keys: Vec<CanonVertex> = positions.iter().map(|&p| weld_key(p)).collect();
        // per-part memo of resolved output ids: each part vertex pays for at
        // most one global hash lookup however many triangles reference it
        let mut local: Vec<u32> = vec![u32::MAX; positions.len()];
        // most part vertices are first occurrences (isosurface seams touch a
        // minority of vertices), so size for all of them up front instead of
        // paying log₂ growth rehashes of an ever-larger table
        self.ids.reserve(positions.len());
        self.input_vertices += positions.len() as u64;
        self.boundary_edges_before += boundary_edge_count(part.indices(), positions.len());
        for tri in part.indices().chunks_exact(3) {
            self.input_triangles += 1;
            let (a, b, c) = (tri[0] as usize, tri[1] as usize, tri[2] as usize);
            if keys[a] == keys[b] || keys[b] == keys[c] || keys[c] == keys[a] {
                self.degenerate_dropped += 1;
                continue;
            }
            let mut ids = [0u32; 3];
            for (slot, &v) in ids.iter_mut().zip([a, b, c].iter()) {
                *slot = if local[v] != u32::MAX {
                    local[v]
                } else {
                    let id = *self
                        .ids
                        .entry(keys[v])
                        .or_insert_with(|| out.push_vertex(positions[v]));
                    local[v] = id;
                    id
                };
            }
            out.push_triangle(ids[0], ids[1], ids[2]);
        }
    }

    /// Finish the join and report its counters. `out` must be the output
    /// mesh this welder's appends produced (its edges are what the
    /// `boundary_edges_after` gauge counts).
    pub fn finish(self, out: &IndexedMesh) -> WeldStats {
        WeldStats {
            input_vertices: self.input_vertices,
            output_vertices: self.ids.len() as u64,
            input_triangles: self.input_triangles,
            degenerate_dropped: self.degenerate_dropped,
            boundary_edges_before: self.boundary_edges_before,
            boundary_edges_after: boundary_edge_count(out.indices(), out.num_vertices()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Vec3;
    use crate::topology::analyze_mesh;

    /// One unit right triangle with fresh vertices at `z`.
    fn tri(m: &mut IndexedMesh, z: f32) {
        let a = m.push_vertex(Vec3::new(0.0, 0.0, z));
        let b = m.push_vertex(Vec3::new(1.0, 0.0, z));
        let c = m.push_vertex(Vec3::new(0.0, 1.0, z));
        m.push_triangle(a, b, c);
    }

    #[test]
    fn welds_duplicate_vertices_across_parts() {
        let mut a = IndexedMesh::new();
        tri(&mut a, 0.0);
        let mut b = IndexedMesh::new();
        // shares the (0,0,0)-(1,0,0) edge with `a` via duplicated vertices
        let p = b.push_vertex(Vec3::new(0.0, 0.0, 0.0));
        let q = b.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let r = b.push_vertex(Vec3::new(1.0, -1.0, 0.0));
        b.push_triangle(p, r, q);

        let mut out = IndexedMesh::new();
        let mut w = MeshWelder::new();
        w.append(&mut out, &a);
        w.append(&mut out, &b);
        let stats = w.finish(&out);
        assert_eq!(out.len(), 2);
        assert_eq!(out.num_vertices(), 4, "shared edge endpoints fused");
        assert_eq!(stats.input_vertices, 6);
        assert_eq!(stats.output_vertices, 4);
        assert_eq!(stats.vertices_merged(), 2);
        assert_eq!(stats.degenerate_dropped, 0);
        // each lone triangle has 3 boundary edges; the weld closes the seam
        assert_eq!(stats.boundary_edges_before, 6);
        assert_eq!(stats.boundary_edges_after, 4);
        assert_eq!(stats.seam_edges_closed(), 2);
    }

    #[test]
    fn split_points_do_not_change_the_join() {
        // welding [a, b] part-by-part ≡ welding their blind concatenation:
        // the join only sees the triangle stream
        let mut a = IndexedMesh::new();
        tri(&mut a, 0.0);
        tri(&mut a, 0.0);
        let mut b = IndexedMesh::new();
        tri(&mut b, 0.0);
        tri(&mut b, 1.0);

        let mut parts = IndexedMesh::new();
        let mut w1 = MeshWelder::new();
        w1.append(&mut parts, &a);
        w1.append(&mut parts, &b);

        let mut concat = a.clone();
        concat.merge(b);
        let (whole, whole_stats) = concat.welded();
        assert_eq!(parts, whole);
        assert_eq!(w1.finish(&parts), whole_stats);
    }

    #[test]
    fn collapsed_triangles_are_dropped_not_emitted() {
        let mut m = IndexedMesh::new();
        tri(&mut m, 0.0);
        // a triangle whose corners quantize to one point: must vanish, and
        // its (otherwise unreferenced) vertices must not leak into the output
        let s = m.push_vertex(Vec3::new(5.0, 5.0, 5.0));
        let t = m.push_vertex(Vec3::new(5.0, 5.0, 5.0));
        let u = m.push_vertex(Vec3::new(5.0, 5.0 + 1e-8, 5.0));
        m.push_triangle(s, t, u);
        let (out, stats) = m.welded();
        assert_eq!(out.len(), 1);
        assert_eq!(out.num_vertices(), 3, "no orphan vertices");
        assert_eq!(stats.degenerate_dropped, 1);
        assert_eq!(stats.input_triangles, 2);
        let r = analyze_mesh(&out);
        assert_eq!(r.vertices, out.num_vertices());
        assert_eq!(r.faces, out.len());
    }

    #[test]
    fn welding_an_already_welded_mesh_is_identity() {
        let mut m = IndexedMesh::new();
        let a = m.push_vertex(Vec3::new(0.0, 0.0, 0.0));
        let b = m.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let c = m.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        let d = m.push_vertex(Vec3::new(1.0, 1.0, 0.0));
        m.push_triangle(a, b, c);
        m.push_triangle(b, d, c);
        let (out, stats) = m.welded();
        assert_eq!(out, m);
        assert_eq!(stats.vertices_merged(), 0);
        assert_eq!(stats.degenerate_dropped, 0);
        assert_eq!(stats.boundary_edges_before, stats.boundary_edges_after);
    }

    #[test]
    fn empty_mesh_welds_to_empty() {
        let (out, stats) = IndexedMesh::new().welded();
        assert!(out.is_empty());
        assert_eq!(stats, WeldStats::default());
    }
}
