//! Triangle generation: Marching Cubes and Marching Tetrahedra.
//!
//! Once the query pipeline has an active metacell in memory, "any of the
//! several variations of the Marching Cubes algorithm can be used to precisely
//! determine the active cells within the metacell and generate the appropriate
//! triangles" (§5). This crate provides two such variants:
//!
//! * [`mc`] — Marching Cubes with a **generated** case table: for each of the
//!   256 sign configurations the isosurface's intersection loops are traced
//!   over the cube's faces with a face-local ambiguity rule (inside corners
//!   separated). Because the rule depends only on the shared face's sign
//!   pattern, adjacent cells always agree on their shared face and the mesh is
//!   watertight by construction — the property tests assert it. Loops are
//!   fan-triangulated with consistent orientation (normals point toward the
//!   `≥ isovalue` side).
//! * [`mt`] — Marching Tetrahedra over the 6-tetrahedra cube decomposition: a
//!   simpler, unambiguous variant used as a cross-check and in the extraction
//!   ablation.
//! * [`mesh`] — minimal triangle/vector types shared with the renderer.
//! * [`indexed`] — shared-vertex [`IndexedMesh`] output plus the slab-sliding
//!   kernel [`mc::marching_cubes_indexed`] that emits it: the production hot
//!   path (each sample classified once, each crossing interpolated once),
//!   equivalence-tested against the reference [`mc::marching_cubes`].
//! * [`weld`] — the deterministic hash join ([`MeshWelder`]) that fuses
//!   duplicated seam vertices when independently extracted sub-meshes
//!   (metacells, cluster nodes) merge, making the result watertight;
//!   [`topology`] verifies it (boundary/non-manifold edge counts).
//! * [`decimate`] — quadric edge-collapse simplification over the welded
//!   [`IndexedMesh`] with topology guards (boundary pinning, link
//!   condition, normal-flip rejection) and deterministic tie-breaking, plus
//!   the [`LodChain`] pyramid the serving layer exposes per level.
//! * [`delta`] — [`MeshDelta`]: bit-exact collapse-record deltas between
//!   adjacent LOD levels, the refinement encoding behind the serving
//!   layer's progressive (coarse-to-fine) responses.
//! * [`backend`] — the [`ExtractionBackend`] trait that makes the kernel
//!   pluggable: both the slab MC kernel and SurfaceNets implement the same
//!   block contract, so the out-of-core pipeline extracts with either.
//! * [`surface_nets`] — high-performance SurfaceNets (arXiv:2401.14906):
//!   one vertex per active cell, one quad per crossing edge (≈ half of MC's
//!   primitive count), bounded smoothing, and deferred seam quads so the
//!   distributed extraction stitches to the exact whole-volume surface.

pub mod backend;
pub mod decimate;
pub mod delta;
pub mod indexed;
pub mod mc;
pub mod mesh;
pub mod mt;
pub mod surface_nets;
pub mod tables;
pub mod topology;
pub mod unstructured;
pub mod weld;

pub use backend::{
    pack_cell, unpack_cell, Backend, BackendScratch, BlockDomain, BlockOutput, ExtractionBackend,
    SeamQuad,
};
pub use decimate::{
    decimate, decimate_to_error, decimate_to_ratio, DecimateOptions, DecimateStats, LodChain,
    LodLevel, Quadric,
};
pub use delta::MeshDelta;
pub use indexed::IndexedMesh;
pub use mc::{count_active_cells, marching_cubes, marching_cubes_indexed, McStats, SlabScratch};
pub use mesh::{canonical_triangles, split_collapsed, Aabb, Triangle, TriangleSoup, Vec3};
pub use mt::{march_tet, marching_tetrahedra};
pub use surface_nets::{
    smooth_surface_nets, stitch_seams, surface_nets, SnScratch, SN_SMOOTH_PASSES,
};
pub use topology::{analyze, analyze_mesh, analyze_mesh_connectivity, TopologyReport};
pub use weld::{MeshWelder, WeldStats};
