//! Quadric edge-collapse decimation and LOD pyramids.
//!
//! The welded extraction path hands downstream consumers an [`IndexedMesh`]
//! with true shared-vertex connectivity — exactly what edge-collapse
//! simplification needs. [`decimate`] is the Garland–Heckbert quadric error
//! metric: every vertex accumulates the squared-distance quadric of its
//! incident face planes, every interior edge becomes a collapse candidate
//! priced at the quadric error of its optimal merged position, and a priority
//! heap retires the cheapest collapses until a vertex target or an error
//! bound is reached.
//!
//! Simplification for a *serving* pipeline has two extra obligations the
//! textbook algorithm does not:
//!
//! * **Topology safety** — a collapse is rejected unless it provably
//!   preserves the surface: boundary (and non-manifold-spine) vertices are
//!   pinned outright, the link condition rules out collapses that would
//!   pinch the surface into a non-manifold edge, and a normal-flip check
//!   rejects collapses that would fold a surviving face through itself.
//!   A closed manifold input therefore stays a closed manifold with the same
//!   Euler characteristic, and an open mesh never loses (or moves) a
//!   boundary vertex.
//! * **Determinism** — results must be byte-identical across runs and across
//!   the cluster's worker counts, or LOD levels could not be cached,
//!   diffed, or served bit-exactly. The heap orders candidates by
//!   `(error, edge)` under `f64::total_cmp`, every fallback scan breaks ties
//!   by fixed evaluation order, and the output is compacted in first-use
//!   order — the same rule [`IndexedMesh::filter_triangles`] uses — so equal
//!   inputs always decimate to equal outputs.
//!
//! [`LodChain`] stacks decimation into a pyramid (e.g. 100 % / 25 % / 6 %):
//! each level is decimated from the previous one, and the accumulated
//! quadric error of a level is exposed as a world-space length
//! ([`LodChain::world_error`]) so renderers can pick the coarsest level
//! whose projected screen-space error stays under a pixel tolerance.

use crate::indexed::IndexedMesh;
use crate::mesh::Vec3;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A symmetric 4×4 error quadric: `error(v) = vᵀ Q v` with `v = (x, y, z, 1)`
/// is the sum of squared distances from `v` to the accumulated planes.
/// Stored as the 10 unique coefficients, in `f64` — collapse errors are tiny
/// differences of large products and `f32` accumulation visibly misorders
/// the heap.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quadric {
    a00: f64,
    a01: f64,
    a02: f64,
    a03: f64,
    a11: f64,
    a12: f64,
    a13: f64,
    a22: f64,
    a23: f64,
    a33: f64,
}

impl Quadric {
    /// The quadric of one plane `n·p + d = 0` (`n` unit length): squared
    /// point-plane distance as a quadratic form.
    pub fn from_plane(n: [f64; 3], d: f64) -> Quadric {
        Quadric {
            a00: n[0] * n[0],
            a01: n[0] * n[1],
            a02: n[0] * n[2],
            a03: n[0] * d,
            a11: n[1] * n[1],
            a12: n[1] * n[2],
            a13: n[1] * d,
            a22: n[2] * n[2],
            a23: n[2] * d,
            a33: d * d,
        }
    }

    /// Accumulate another quadric.
    pub fn add(&mut self, o: &Quadric) {
        self.a00 += o.a00;
        self.a01 += o.a01;
        self.a02 += o.a02;
        self.a03 += o.a03;
        self.a11 += o.a11;
        self.a12 += o.a12;
        self.a13 += o.a13;
        self.a22 += o.a22;
        self.a23 += o.a23;
        self.a33 += o.a33;
    }

    /// Sum of two quadrics.
    pub fn sum(&self, o: &Quadric) -> Quadric {
        let mut q = *self;
        q.add(o);
        q
    }

    /// `vᵀ Q v` — the accumulated squared plane distance at `p`. Clamped at
    /// zero: the exact form is non-negative, but cancellation can dip a few
    /// ulps below.
    pub fn error(&self, p: [f64; 3]) -> f64 {
        let (x, y, z) = (p[0], p[1], p[2]);
        let e = self.a00 * x * x
            + self.a11 * y * y
            + self.a22 * z * z
            + 2.0 * (self.a01 * x * y + self.a02 * x * z + self.a12 * y * z)
            + 2.0 * (self.a03 * x + self.a13 * y + self.a23 * z)
            + self.a33;
        e.max(0.0)
    }

    /// The position minimizing [`Quadric::error`], if the 3×3 system is
    /// well-conditioned. `None` when the quadric is (near-)singular — all
    /// accumulated planes parallel or collinear, where the minimizer is a
    /// line or plane of points and any particular solution would be
    /// numerically arbitrary; callers fall back to candidate points.
    pub fn optimal_point(&self) -> Option<[f64; 3]> {
        // Solve A x = -b with A the upper-left 3×3 block, b = (a03,a13,a23).
        let a = [
            [self.a00, self.a01, self.a02],
            [self.a01, self.a11, self.a12],
            [self.a02, self.a12, self.a22],
        ];
        let det = a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
            - a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
            + a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
        // scale-aware singularity threshold: |det| relative to the cube of
        // the largest coefficient magnitude
        let scale = a
            .iter()
            .flatten()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-30);
        if det.abs() <= 1e-9 * scale * scale * scale {
            return None;
        }
        let b = [-self.a03, -self.a13, -self.a23];
        // Cramer's rule — deterministic, no pivot-order ambiguity.
        let det_x = b[0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
            - a[0][1] * (b[1] * a[2][2] - a[1][2] * b[2])
            + a[0][2] * (b[1] * a[2][1] - a[1][1] * b[2]);
        let det_y = a[0][0] * (b[1] * a[2][2] - a[1][2] * b[2])
            - b[0] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
            + a[0][2] * (a[1][0] * b[2] - b[1] * a[2][0]);
        let det_z = a[0][0] * (a[1][1] * b[2] - b[1] * a[2][1])
            - a[0][1] * (a[1][0] * b[2] - b[1] * a[2][0])
            + b[0] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
        Some([det_x / det, det_y / det, det_z / det])
    }
}

/// Stopping rules for one decimation pass.
#[derive(Clone, Copy, Debug)]
pub struct DecimateOptions {
    /// Stop once the surviving vertex count reaches this target
    /// (0 = no vertex target).
    pub target_vertices: usize,
    /// Reject any collapse whose quadric error exceeds this bound
    /// (`f64::INFINITY` = no bound).
    pub max_error: f64,
}

impl Default for DecimateOptions {
    fn default() -> Self {
        DecimateOptions {
            target_vertices: 0,
            max_error: f64::INFINITY,
        }
    }
}

/// Counters describing one decimation pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DecimateStats {
    /// Vertices / triangles of the input mesh.
    pub input_vertices: u64,
    /// Triangles of the input mesh.
    pub input_triangles: u64,
    /// Vertices of the decimated mesh.
    pub output_vertices: u64,
    /// Triangles of the decimated mesh.
    pub output_triangles: u64,
    /// Edge collapses applied.
    pub collapses: u64,
    /// Candidates rejected by the link (manifoldness) condition.
    pub rejected_link: u64,
    /// Candidates rejected because a surviving face would flip or collapse.
    pub rejected_flip: u64,
    /// Candidates rejected by [`DecimateOptions::max_error`].
    pub rejected_error: u64,
    /// Vertices pinned because they lie on a boundary or non-manifold edge
    /// (never collapsed, never moved).
    pub pinned_vertices: u64,
    /// Largest quadric error of any applied collapse (a squared world-space
    /// distance; `sqrt` of it is the pass's world-error gauge).
    pub max_error: f64,
    /// True when the pass stopped at [`DecimateOptions::target_vertices`];
    /// false when the candidate heap ran dry first (every remaining collapse
    /// rejected by a guard or the error bound).
    pub reached_target: bool,
}

impl DecimateStats {
    /// Surviving fraction of the input vertex count.
    pub fn vertex_ratio(&self) -> f64 {
        if self.input_vertices == 0 {
            return 1.0;
        }
        self.output_vertices as f64 / self.input_vertices as f64
    }

    /// World-space length of the worst applied collapse (`√max_error`).
    pub fn world_error(&self) -> f64 {
        self.max_error.sqrt()
    }
}

/// A heap candidate: collapse edge `(a, b)` to `pos` at `error`. Min-ordered
/// by `(error, a, b)` under total float order, so two runs over the same
/// mesh always retire collapses in the same sequence.
struct Candidate {
    error: f64,
    a: u32,
    b: u32,
    pos: Vec3,
    /// Version stamps of both endpoints at push time; a mismatch at pop time
    /// means the neighborhood changed and the entry is stale.
    va: u32,
    vb: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse for cheapest-first
        other
            .error
            .total_cmp(&self.error)
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

fn v3(p: Vec3) -> [f64; 3] {
    [p.x as f64, p.y as f64, p.z as f64]
}

/// Reusable per-pop scratch: every buffer the collapse guards and the
/// apply step need, allocated once and recycled across heap pops. After the
/// first few collapses warm the capacities, the hot loop allocates nothing.
#[derive(Default)]
struct Scratch {
    /// Faces sharing the candidate edge (die with the collapse).
    shared: Vec<u32>,
    /// Opposite corners of the shared faces (link-condition right-hand side).
    opposite: Vec<u32>,
    /// Vertices adjacent to endpoint `a` / endpoint `b`.
    na: Vec<u32>,
    nb: Vec<u32>,
    /// Snapshot of `b`'s surviving incident faces during the merge.
    fb: Vec<u32>,
    /// Edges incident to the kept vertex, re-priced after a collapse.
    repush: Vec<(u32, u32)>,
}

/// The in-progress decimation state over index-stable working arrays.
struct Decimator {
    positions: Vec<Vec3>,
    quadrics: Vec<Quadric>,
    /// Working faces (corner indices); dead faces are tombstoned in `alive`.
    faces: Vec<[u32; 3]>,
    alive: Vec<bool>,
    /// Per-vertex incident alive-face lists (may briefly hold dead ids;
    /// filtered on read).
    vertex_faces: Vec<Vec<u32>>,
    /// Boundary/non-manifold vertices — pinned.
    pinned: Vec<bool>,
    /// Bumped whenever a vertex's position/quadric/neighborhood changes.
    versions: Vec<u32>,
    heap: BinaryHeap<Candidate>,
    alive_vertices: usize,
    stats: DecimateStats,
    opts: DecimateOptions,
    scratch: Scratch,
}

impl Decimator {
    fn new(mesh: &IndexedMesh, opts: DecimateOptions) -> Decimator {
        let nv = mesh.num_vertices();
        let positions: Vec<Vec3> = mesh.positions().to_vec();
        let faces: Vec<[u32; 3]> = mesh
            .indices()
            .chunks_exact(3)
            .map(|t| [t[0], t[1], t[2]])
            .collect();

        let mut quadrics = vec![Quadric::default(); nv];
        let mut vertex_faces: Vec<Vec<u32>> = vec![Vec::new(); nv];
        for (fi, f) in faces.iter().enumerate() {
            let (p0, p1, p2) = (
                v3(positions[f[0] as usize]),
                v3(positions[f[1] as usize]),
                v3(positions[f[2] as usize]),
            );
            let e1 = [p1[0] - p0[0], p1[1] - p0[1], p1[2] - p0[2]];
            let e2 = [p2[0] - p0[0], p2[1] - p0[1], p2[2] - p0[2]];
            let n = [
                e1[1] * e2[2] - e1[2] * e2[1],
                e1[2] * e2[0] - e1[0] * e2[2],
                e1[0] * e2[1] - e1[1] * e2[0],
            ];
            let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
            for &c in f {
                vertex_faces[c as usize].push(fi as u32);
            }
            if len <= 1e-20 {
                continue; // degenerate face contributes no plane
            }
            let n = [n[0] / len, n[1] / len, n[2] / len];
            let d = -(n[0] * p0[0] + n[1] * p0[1] + n[2] * p0[2]);
            let q = Quadric::from_plane(n, d);
            for &c in f {
                quadrics[c as usize].add(&q);
            }
        }

        // Edge face-multiplicity: anything but exactly 2 incident faces pins
        // both endpoints (surface boundary, or a non-manifold spine the
        // decimator must not make worse). Count over sorted undirected edges.
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(faces.len() * 3);
        for f in &faces {
            for i in 0..3 {
                let (a, b) = (f[i], f[(i + 1) % 3]);
                if a != b {
                    edges.push(if a < b { (a, b) } else { (b, a) });
                }
            }
        }
        edges.sort_unstable();
        let mut pinned = vec![false; nv];
        let mut uniq_edges: Vec<(u32, u32)> = Vec::new();
        let mut i = 0;
        while i < edges.len() {
            let mut j = i + 1;
            while j < edges.len() && edges[j] == edges[i] {
                j += 1;
            }
            if j - i != 2 {
                pinned[edges[i].0 as usize] = true;
                pinned[edges[i].1 as usize] = true;
            }
            uniq_edges.push(edges[i]);
            i = j;
        }
        let pinned_count = pinned.iter().filter(|&&p| p).count() as u64;

        // A vertex is alive iff some face references it; orphans never
        // counted (they are dropped by output compaction regardless).
        let alive_vertices = vertex_faces.iter().filter(|l| !l.is_empty()).count();

        let mut dec = Decimator {
            positions,
            quadrics,
            alive: vec![true; faces.len()],
            faces,
            vertex_faces,
            pinned,
            versions: vec![0; nv],
            heap: BinaryHeap::new(),
            alive_vertices,
            stats: DecimateStats {
                input_vertices: mesh.num_vertices() as u64,
                input_triangles: mesh.len() as u64,
                pinned_vertices: pinned_count,
                ..Default::default()
            },
            opts,
            scratch: Scratch::default(),
        };
        for (a, b) in uniq_edges {
            dec.push_candidate(a, b);
        }
        dec
    }

    /// Price edge `(a, b)` and push it (skipped when an endpoint is pinned —
    /// boundary edges are never collapse candidates at all).
    fn push_candidate(&mut self, a: u32, b: u32) {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        if self.pinned[a as usize] || self.pinned[b as usize] {
            return;
        }
        let q = self.quadrics[a as usize].sum(&self.quadrics[b as usize]);
        let (pa, pb) = (self.positions[a as usize], self.positions[b as usize]);
        // optimal point, else the best of midpoint/endpoints — evaluated in
        // fixed order with strict improvement, so ties resolve identically
        // on every run
        let (pos, error) = match q.optimal_point() {
            Some(p) => (Vec3::new(p[0] as f32, p[1] as f32, p[2] as f32), {
                // re-evaluate at the f32-rounded position actually stored,
                // so the priced error is the error the mesh will realize
                q.error([p[0] as f32 as f64, p[1] as f32 as f64, p[2] as f32 as f64])
            }),
            None => {
                let mid = (pa + pb) * 0.5;
                let mut best = (mid, q.error(v3(mid)));
                for cand in [pa, pb] {
                    let e = q.error(v3(cand));
                    if e < best.1 {
                        best = (cand, e);
                    }
                }
                best
            }
        };
        self.heap.push(Candidate {
            error,
            a,
            b,
            pos,
            va: self.versions[a as usize],
            vb: self.versions[b as usize],
        });
    }

    /// Drop `v`'s dead incident faces in place (cheap once compacted).
    fn compact_faces(&mut self, v: u32) {
        let list = &mut self.vertex_faces[v as usize];
        list.retain(|&f| self.alive[f as usize]);
    }

    /// The link condition plus geometric guards for collapsing `(a, b)` to
    /// `pos`. Returns `None` when legal, or the rejection counter to bump.
    /// Allocation-free on the hot path: every buffer lives in [`Scratch`].
    fn check_collapse(&mut self, a: u32, b: u32, pos: Vec3) -> Option<Rejection> {
        self.compact_faces(a);
        self.compact_faces(b);
        let mut s = std::mem::take(&mut self.scratch);
        let result = self.check_collapse_with(a, b, pos, &mut s);
        self.scratch = s;
        result
    }

    fn check_collapse_with(&self, a: u32, b: u32, pos: Vec3, s: &mut Scratch) -> Option<Rejection> {
        // compacted lists borrow immutably for the whole guard section
        let fa = &self.vertex_faces[a as usize];
        let fb = &self.vertex_faces[b as usize];
        // faces sharing the edge (they die with the collapse)
        s.shared.clear();
        s.shared
            .extend(fa.iter().copied().filter(|f| fb.contains(f)));
        // an interior manifold edge has exactly two incident faces
        if s.shared.len() != 2 {
            return Some(Rejection::Link);
        }
        // link condition: the vertices adjacent to both endpoints must be
        // exactly the two opposite corners of the shared faces, or the
        // collapse pinches the surface into a non-manifold edge
        s.opposite.clear();
        for &f in &s.shared {
            for &c in &self.faces[f as usize] {
                if c != a && c != b {
                    s.opposite.push(c);
                }
            }
        }
        s.opposite.sort_unstable();
        self.common_neighbors_into(fa, fb, a, b, s);
        if s.na != s.opposite {
            return Some(Rejection::Link);
        }
        // normal-flip / degeneration guard over every surviving face
        for (v, faces) in [(a, fa), (b, fb)] {
            for &f in faces {
                if s.shared.contains(&f) {
                    continue;
                }
                let tri = self.faces[f as usize];
                let before = self.face_normal(tri, None);
                let after = self.face_normal(tri, Some((v, pos)));
                // reject folds and (near-)degenerate results; the dot is on
                // unnormalized normals so a shrinking face also has to keep
                // its orientation decisively
                let cross = after.1;
                if cross <= 1e-20 || before.0.dot(after.0) <= 0.0 {
                    return Some(Rejection::Flip);
                }
            }
        }
        None
    }

    /// Vertices adjacent to both `a` and `b` (via any alive face), excluding
    /// the endpoints themselves. The sorted, deduped result lands in `s.na`.
    fn common_neighbors_into(&self, fa: &[u32], fb: &[u32], a: u32, b: u32, s: &mut Scratch) {
        s.na.clear();
        s.na.extend(
            fa.iter()
                .flat_map(|&f| self.faces[f as usize])
                .filter(|&c| c != a && c != b),
        );
        s.na.sort_unstable();
        s.na.dedup();
        s.nb.clear();
        s.nb.extend(
            fb.iter()
                .flat_map(|&f| self.faces[f as usize])
                .filter(|&c| c != a && c != b),
        );
        s.nb.sort_unstable();
        s.nb.dedup();
        let nb = &s.nb;
        s.na.retain(|v| nb.binary_search(v).is_ok());
    }

    /// Unnormalized face normal (and its squared length) with `override_`
    /// optionally substituting one corner's position.
    fn face_normal(&self, tri: [u32; 3], override_: Option<(u32, Vec3)>) -> (Vec3, f64) {
        let p = |c: u32| -> Vec3 {
            match override_ {
                Some((v, pos)) if v == c => pos,
                _ => self.positions[c as usize],
            }
        };
        let (p0, p1, p2) = (p(tri[0]), p(tri[1]), p(tri[2]));
        let n = (p1 - p0).cross(p2 - p0);
        let len2 =
            (n.x as f64) * (n.x as f64) + (n.y as f64) * (n.y as f64) + (n.z as f64) * (n.z as f64);
        (n, len2)
    }

    /// Apply the collapse `(a, b) → pos`: `b` merges into `a`.
    ///
    /// Re-pricing is **lazy**: only the endpoints' versions bump (their
    /// quadric/position changed — the only inputs to a candidate's priced
    /// error) and only edges incident to the kept vertex re-enter the heap.
    /// Ring edges not touching `a` keep their still-correct prices, and any
    /// legality change in their neighborhood is caught by the pop-time
    /// guards (or recovered by a reseed round — see [`Decimator::run`]).
    /// Eagerly re-pricing the whole one-ring costs ~20× more heap traffic
    /// for identical output quality.
    fn apply_collapse(&mut self, a: u32, b: u32, pos: Vec3) {
        self.compact_faces(a);
        self.compact_faces(b);
        let mut s = std::mem::take(&mut self.scratch);
        {
            let fa = &self.vertex_faces[a as usize];
            let fb = &self.vertex_faces[b as usize];
            s.shared.clear();
            s.shared
                .extend(fa.iter().copied().filter(|f| fb.contains(f)));
            s.fb.clear();
            s.fb.extend_from_slice(fb);
        }
        for &f in &s.shared {
            self.alive[f as usize] = false;
        }
        // rewrite b's surviving faces to reference a
        for &f in &s.fb {
            if s.shared.contains(&f) {
                continue;
            }
            for c in self.faces[f as usize].iter_mut() {
                if *c == b {
                    *c = a;
                }
            }
            self.vertex_faces[a as usize].push(f);
        }
        self.vertex_faces[b as usize].clear();
        self.positions[a as usize] = pos;
        let qb = self.quadrics[b as usize];
        self.quadrics[a as usize].add(&qb);
        self.alive_vertices -= 1;
        self.versions[a as usize] += 1;
        self.versions[b as usize] += 1;

        // re-price the edges incident to the kept vertex
        self.compact_faces(a);
        s.repush.clear();
        for &f in &self.vertex_faces[a as usize] {
            let tri = self.faces[f as usize];
            for i in 0..3 {
                let (x, y) = (tri[i], tri[(i + 1) % 3]);
                if (x == a || y == a) && x != y {
                    s.repush.push(if x < y { (x, y) } else { (y, x) });
                }
            }
        }
        s.repush.sort_unstable();
        s.repush.dedup();
        for i in 0..s.repush.len() {
            let (x, y) = s.repush[i];
            self.push_candidate(x, y);
        }
        self.scratch = s;
    }

    /// Drain the heap until the target is reached, the error bound stops
    /// progress, or the heap runs dry. Returns `(collapses, error_stop)`.
    fn drain_heap(&mut self, target: usize) -> (u64, bool) {
        let mut applied = 0u64;
        loop {
            if target > 0 && self.alive_vertices <= target {
                self.stats.reached_target = true;
                return (applied, false);
            }
            let Some(c) = self.heap.pop() else {
                return (applied, false);
            };
            let (a, b) = (c.a as usize, c.b as usize);
            if self.versions[a] != c.va || self.versions[b] != c.vb {
                continue; // stale
            }
            if c.error > self.opts.max_error {
                // the heap is min-ordered: every remaining candidate at the
                // current versions is at least this expensive
                self.stats.rejected_error += 1;
                return (applied, true);
            }
            match self.check_collapse(c.a, c.b, c.pos) {
                Some(Rejection::Link) => {
                    self.stats.rejected_link += 1;
                    continue;
                }
                Some(Rejection::Flip) => {
                    self.stats.rejected_flip += 1;
                    continue;
                }
                None => {}
            }
            self.apply_collapse(c.a, c.b, c.pos);
            applied += 1;
            self.stats.collapses += 1;
            self.stats.max_error = self.stats.max_error.max(c.error);
        }
    }

    /// Rebuild the candidate heap from every alive edge — recovers
    /// candidates that were rejected (and dropped) earlier but became legal
    /// after nearby collapses. Deterministic: seeded in sorted edge order.
    fn reseed(&mut self) {
        self.heap.clear();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (fi, f) in self.faces.iter().enumerate() {
            if !self.alive[fi] {
                continue;
            }
            for i in 0..3 {
                let (x, y) = (f[i], f[(i + 1) % 3]);
                if x != y {
                    edges.push(if x < y { (x, y) } else { (y, x) });
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        for (x, y) in edges {
            self.push_candidate(x, y);
        }
    }

    fn run(mut self) -> (IndexedMesh, DecimateStats) {
        let target = self.opts.target_vertices;
        loop {
            let (applied, error_stop) = self.drain_heap(target);
            if self.stats.reached_target || error_stop {
                break;
            }
            if applied == 0 {
                break; // a whole round found nothing legal: truly done
            }
            // lazy re-pricing may have dropped candidates that are legal
            // now; reseed and keep going until a round makes no progress
            self.reseed();
        }

        // Compact the surviving faces into a fresh mesh, remapping vertices
        // in first-use order (deterministic; orphans drop out).
        let mut remap = vec![u32::MAX; self.positions.len()];
        let mut out = IndexedMesh::with_capacity(self.alive.iter().filter(|&&a| a).count());
        for (fi, f) in self.faces.iter().enumerate() {
            if !self.alive[fi] {
                continue;
            }
            let mut corners = [0u32; 3];
            for (slot, &c) in corners.iter_mut().zip(f.iter()) {
                if remap[c as usize] == u32::MAX {
                    remap[c as usize] = out.push_vertex(self.positions[c as usize]);
                }
                *slot = remap[c as usize];
            }
            out.push_triangle(corners[0], corners[1], corners[2]);
        }
        self.stats.output_vertices = out.num_vertices() as u64;
        self.stats.output_triangles = out.len() as u64;
        (out, self.stats)
    }
}

enum Rejection {
    Link,
    Flip,
}

/// Decimate `mesh` under `opts`. Deterministic: equal meshes (and options)
/// always yield byte-identical outputs.
pub fn decimate(mesh: &IndexedMesh, opts: &DecimateOptions) -> (IndexedMesh, DecimateStats) {
    if mesh.is_empty() {
        return (
            IndexedMesh::new(),
            DecimateStats {
                input_vertices: mesh.num_vertices() as u64,
                reached_target: opts.target_vertices >= mesh.num_vertices(),
                ..Default::default()
            },
        );
    }
    Decimator::new(mesh, *opts).run()
}

/// Decimate until at most `ratio ×` the input vertices survive (clamped to
/// `[0, 1]`; guards may stop earlier — see [`DecimateStats::reached_target`]).
pub fn decimate_to_ratio(mesh: &IndexedMesh, ratio: f64) -> (IndexedMesh, DecimateStats) {
    let ratio = ratio.clamp(0.0, 1.0);
    let target = (mesh.num_vertices() as f64 * ratio).ceil() as usize;
    decimate(
        mesh,
        &DecimateOptions {
            target_vertices: target,
            max_error: f64::INFINITY,
        },
    )
}

/// Decimate as far as possible without any collapse exceeding `max_error`
/// (a squared world-space distance).
pub fn decimate_to_error(mesh: &IndexedMesh, max_error: f64) -> (IndexedMesh, DecimateStats) {
    decimate(
        mesh,
        &DecimateOptions {
            target_vertices: 0,
            max_error,
        },
    )
}

/// One level of a LOD pyramid.
#[derive(Clone, Debug)]
pub struct LodLevel {
    /// The vertex-count target this level was built for, as a fraction of
    /// the level-0 mesh (level 0 itself is 1.0).
    pub target_ratio: f64,
    /// The level's mesh (level 0 is the full-resolution input).
    pub mesh: IndexedMesh,
    /// Decimation counters for this level (default for level 0).
    pub stats: DecimateStats,
    /// Accumulated squared quadric error versus the full-resolution mesh
    /// (sum of the per-level `max_error`s along the chain; 0 for level 0).
    pub cumulative_error: f64,
}

/// A pyramid of progressively decimated meshes, level 0 being full
/// resolution. Built once post-weld, served per level.
#[derive(Clone, Debug, Default)]
pub struct LodChain {
    levels: Vec<LodLevel>,
}

impl LodChain {
    /// Build a chain from `base` with one extra level per entry of `ratios`
    /// (each a fraction of the **base** vertex count; must be strictly
    /// decreasing and in `(0, 1)`). Each level is decimated from the
    /// previous one, so the pyramid costs one pass per level over
    /// ever-smaller meshes.
    pub fn build(base: IndexedMesh, ratios: &[f64]) -> LodChain {
        Self::build_observed(base, ratios, |_, _, _| {})
    }

    /// [`LodChain::build`] with a per-level observer: after each decimated
    /// level is built, `observe(level, wall, stats)` is called with the
    /// level's index (1 = first decimated level), its measured decimation
    /// wall-clock, and its counters. Request tracing attributes pyramid cost
    /// per level through this hook without this crate knowing about any
    /// tracing substrate.
    pub fn build_observed(
        base: IndexedMesh,
        ratios: &[f64],
        mut observe: impl FnMut(usize, std::time::Duration, &DecimateStats),
    ) -> LodChain {
        let base_vertices = base.num_vertices();
        let mut levels = vec![LodLevel {
            target_ratio: 1.0,
            mesh: base,
            stats: DecimateStats::default(),
            cumulative_error: 0.0,
        }];
        let mut prev_ratio = 1.0;
        for (i, &ratio) in ratios.iter().enumerate() {
            assert!(
                ratio > 0.0 && ratio < prev_ratio,
                "LOD ratios must be strictly decreasing in (0, 1): {ratios:?}"
            );
            prev_ratio = ratio;
            let target = (base_vertices as f64 * ratio).ceil() as usize;
            let prev = levels.last().expect("level 0 exists");
            let t = std::time::Instant::now();
            let (mesh, stats) = decimate(
                &prev.mesh,
                &DecimateOptions {
                    target_vertices: target,
                    max_error: f64::INFINITY,
                },
            );
            observe(i + 1, t.elapsed(), &stats);
            let cumulative_error = prev.cumulative_error + stats.max_error;
            levels.push(LodLevel {
                target_ratio: ratio,
                mesh,
                stats,
                cumulative_error,
            });
        }
        LodChain { levels }
    }

    /// Wrap an already-built level list (level 0 first). Used when levels
    /// cross process boundaries (the serving cache).
    pub fn from_levels(levels: Vec<LodLevel>) -> LodChain {
        LodChain { levels }
    }

    /// Number of levels (≥ 1 for any built chain; 0 only for `default()`).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the chain holds no levels.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Level `i` (0 = full resolution).
    pub fn level(&self, i: usize) -> Option<&LodLevel> {
        self.levels.get(i)
    }

    /// All levels, finest first.
    pub fn levels(&self) -> &[LodLevel] {
        &self.levels
    }

    /// The full-resolution mesh.
    pub fn full(&self) -> &IndexedMesh {
        &self.levels[0].mesh
    }

    /// World-space error gauge of level `i`: `√cumulative_error` — the
    /// length renderers project to screen space for LOD selection.
    pub fn world_error(&self, i: usize) -> f64 {
        self.levels
            .get(i)
            .map_or(f64::INFINITY, |l| l.cumulative_error.sqrt())
    }

    /// World-space error gauges of every level, finest first.
    pub fn world_errors(&self) -> Vec<f64> {
        (0..self.levels.len())
            .map(|i| self.world_error(i))
            .collect()
    }

    /// Consume the chain into its levels.
    pub fn into_levels(self) -> Vec<LodLevel> {
        self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::{marching_cubes_indexed, SlabScratch};
    use crate::topology::{analyze_mesh_connectivity, TopologyReport};
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::{Dims3, Volume};

    fn sphere_mesh(n: usize) -> IndexedMesh {
        let vol: Volume<f32> = SphereField::centered(0.33, 128.0).sample(Dims3::cube(n));
        let mut mesh = IndexedMesh::new();
        let mut scratch = SlabScratch::new();
        marching_cubes_indexed(
            &vol,
            128.5,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut mesh,
            &mut scratch,
        );
        let (welded, _) = mesh.welded();
        welded
    }

    fn topo(mesh: &IndexedMesh) -> TopologyReport {
        analyze_mesh_connectivity(mesh)
    }

    #[test]
    fn quadric_plane_distance() {
        // plane z = 2: n = (0,0,1), d = -2
        let q = Quadric::from_plane([0.0, 0.0, 1.0], -2.0);
        assert!(q.error([5.0, -3.0, 2.0]) < 1e-12);
        assert!((q.error([0.0, 0.0, 5.0]) - 9.0).abs() < 1e-9);
        // sum of three orthogonal planes through (1,2,3) has that minimizer
        let mut q = Quadric::from_plane([1.0, 0.0, 0.0], -1.0);
        q.add(&Quadric::from_plane([0.0, 1.0, 0.0], -2.0));
        q.add(&Quadric::from_plane([0.0, 0.0, 1.0], -3.0));
        let p = q.optimal_point().expect("well-conditioned");
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!((p[1] - 2.0).abs() < 1e-9);
        assert!((p[2] - 3.0).abs() < 1e-9);
        assert!(q.error(p) < 1e-12);
    }

    #[test]
    fn singular_quadric_has_no_optimal_point() {
        // all planes parallel: minimizer is a whole plane
        let mut q = Quadric::from_plane([0.0, 0.0, 1.0], 0.0);
        q.add(&Quadric::from_plane([0.0, 0.0, 1.0], -1.0));
        assert!(q.optimal_point().is_none());
    }

    #[test]
    fn sphere_decimates_to_target_preserving_topology() {
        let mesh = sphere_mesh(20);
        let before = topo(&mesh);
        assert!(before.is_closed_manifold());
        assert_eq!(before.euler_characteristic(), 2);

        let (out, stats) = decimate_to_ratio(&mesh, 0.25);
        assert!(stats.reached_target, "{stats:?}");
        let target = (mesh.num_vertices() as f64 * 0.25).ceil() as usize;
        assert!(out.num_vertices() <= target, "{stats:?}");
        assert!(stats.collapses > 0);
        let after = topo(&out);
        assert!(after.is_closed_manifold(), "{after:?}");
        assert_eq!(after.euler_characteristic(), 2, "{after:?}");
        assert_eq!(after.components, 1);
        assert_eq!(stats.output_vertices, out.num_vertices() as u64);
        assert_eq!(stats.output_triangles, out.len() as u64);
        // Euler bookkeeping: each manifold collapse removes 1 vertex, 2 faces
        assert_eq!(
            stats.input_triangles - stats.output_triangles,
            2 * stats.collapses
        );
    }

    #[test]
    fn decimation_is_deterministic() {
        let mesh = sphere_mesh(16);
        let (a, sa) = decimate_to_ratio(&mesh, 0.3);
        let (b, sb) = decimate_to_ratio(&mesh, 0.3);
        assert_eq!(a, b, "repeated runs must be bit-identical");
        assert_eq!(sa, sb);
    }

    #[test]
    fn error_bound_mode_respects_the_bound() {
        let mesh = sphere_mesh(16);
        let (out, stats) = decimate_to_error(&mesh, 1e-4);
        assert!(stats.max_error <= 1e-4, "{stats:?}");
        assert!(out.num_vertices() < mesh.num_vertices());
        assert!(topo(&out).is_closed_manifold());
        // zero budget: nothing may collapse
        let (same, zstats) = decimate_to_error(&mesh, 0.0);
        // (collapses of error exactly 0.0 are allowed — coplanar regions)
        assert!(zstats.max_error <= 0.0);
        assert!(same.num_vertices() <= mesh.num_vertices());
    }

    #[test]
    fn empty_and_tiny_meshes_are_handled() {
        let (out, stats) = decimate_to_ratio(&IndexedMesh::new(), 0.1);
        assert!(out.is_empty());
        assert_eq!(stats.collapses, 0);

        // single triangle: all 3 edges are boundary → fully pinned
        let mut tri = IndexedMesh::new();
        let a = tri.push_vertex(Vec3::ZERO);
        let b = tri.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let c = tri.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        tri.push_triangle(a, b, c);
        let (out, stats) = decimate_to_ratio(&tri, 0.0);
        assert_eq!(out.positions(), tri.positions());
        assert_eq!(out.indices(), tri.indices());
        assert_eq!(stats.collapses, 0);
        assert_eq!(stats.pinned_vertices, 3);
        assert!(!stats.reached_target);
    }

    #[test]
    fn lod_chain_builds_decreasing_levels() {
        let mesh = sphere_mesh(20);
        let nv = mesh.num_vertices();
        let chain = LodChain::build(mesh, &[0.25, 0.06]);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.level(0).unwrap().mesh.num_vertices(), nv);
        assert_eq!(chain.world_error(0), 0.0);
        let v1 = chain.level(1).unwrap().mesh.num_vertices();
        let v2 = chain.level(2).unwrap().mesh.num_vertices();
        assert!(v1 < nv && v2 < v1, "{nv} -> {v1} -> {v2}");
        assert!(v1 <= (nv as f64 * 0.25).ceil() as usize);
        assert!(chain.world_error(2) >= chain.world_error(1));
        assert!(chain.world_error(3).is_infinite(), "out of range");
        for level in chain.levels() {
            assert!(topo(&level.mesh).is_closed_manifold());
        }
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn lod_chain_rejects_non_decreasing_ratios() {
        LodChain::build(sphere_mesh(10), &[0.5, 0.5]);
    }

    #[test]
    fn build_observed_reports_each_decimated_level() {
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let chain = LodChain::build_observed(sphere_mesh(20), &[0.25, 0.06], |i, wall, stats| {
            assert!(wall > std::time::Duration::ZERO);
            seen.push((i, stats.collapses));
        });
        assert_eq!(seen.len(), 2, "one observation per decimated level");
        assert_eq!(seen[0].0, 1);
        assert_eq!(seen[1].0, 2);
        for (i, collapses) in &seen {
            assert_eq!(
                *collapses,
                chain.level(*i).unwrap().stats.collapses,
                "observer stats must match the built level"
            );
        }
    }
}
