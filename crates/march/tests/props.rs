//! Property tests for the marching-cubes core: all 256 configurations via
//! random single-cell volumes, plus complementarity and edge-incidence
//! invariants on random multi-cell fields.

use oociso_march::{marching_cubes, marching_tetrahedra, TriangleSoup, Vec3};
use oociso_volume::{Dims3, Volume};
use proptest::prelude::*;

fn single_cell(values: [u8; 8]) -> Volume<u8> {
    // corner order must match tables::CORNERS
    let mut data = vec![0u8; 8];
    let corners = [
        (0, 0, 0),
        (1, 0, 0),
        (1, 1, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 0, 1),
        (1, 1, 1),
        (0, 1, 1),
    ];
    let dims = Dims3::cube(2);
    for (i, &(x, y, z)) in corners.iter().enumerate() {
        data[dims.index(x, y, z)] = values[i];
    }
    Volume::from_vec(dims, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn single_cell_triangles_lie_on_cube_edges(values in any::<[u8; 8]>(), iso in 1u32..255) {
        let iso = iso as f32 - 0.5; // avoid exact vertex hits
        let vol = single_cell(values);
        let mut soup = TriangleSoup::new();
        marching_cubes(&vol, iso, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        for t in soup.triangles() {
            for v in &t.v {
                // every vertex lies on a cube edge: two coordinates integral
                let frac = |x: f32| x.fract().abs() > 1e-6 && (1.0 - x.fract()).abs() > 1e-6;
                let fractional = [frac(v.x), frac(v.y), frac(v.z)];
                prop_assert!(fractional.iter().filter(|&&f| f).count() <= 1,
                    "vertex {v:?} not on an edge");
                prop_assert!((-1e-5..=1.00001).contains(&v.x));
                prop_assert!((-1e-5..=1.00001).contains(&v.y));
                prop_assert!((-1e-5..=1.00001).contains(&v.z));
            }
        }
    }

    #[test]
    fn complementary_fields_same_crossing_points(values in any::<[u8; 8]>(), iso in 1u32..255) {
        // Inverting the field around the isovalue flips inside/outside. The
        // crossing points are identical; the triangulation may differ (the
        // separate-inside-corners ambiguity rule is intentionally asymmetric
        // under complement — both topologies are valid isosurfaces).
        let iso_f = iso as f32 - 0.5;
        let vol = single_cell(values);
        let inv_values: Vec<u8> = vol.data().iter().map(|&v| 255 - v).collect();
        let inv = Volume::from_vec(Dims3::cube(2), inv_values);
        let mut a = TriangleSoup::new();
        marching_cubes(&vol, iso_f, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut a);
        let mut b = TriangleSoup::new();
        marching_cubes(&inv, 255.0 - iso_f, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut b);
        let points = |s: &TriangleSoup| {
            let mut v: Vec<(i64, i64, i64)> = s
                .triangles()
                .iter()
                .flat_map(|t| t.v.iter())
                .map(|p| {
                    let q = 1_048_576.0;
                    ((p.x * q).round() as i64, (p.y * q).round() as i64, (p.z * q).round() as i64)
                })
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        prop_assert_eq!(points(&a), points(&b));
        prop_assert_eq!(a.is_empty(), b.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_fields_have_even_interior_edge_parity(seed in any::<u64>()) {
        // Crack detection on arbitrary fields: every mesh edge whose
        // endpoints are strictly interior to the volume must be incident to
        // an EVEN number of triangles. A crack (one cell emitting a face
        // segment its neighbour does not match) shows up as odd parity.
        // (Exactly-2 is too strong: a fan diagonal may coincide with a
        // neighbour cell's face segment, legally yielding 4.)
        let dims = Dims3::new(9, 9, 9);
        let vol = Volume::<u8>::generate(dims, |x, y, z| {
            (oociso_volume::noise::splitmix64(
                seed ^ ((x + 31 * y + 977 * z) as u64)) & 0xff) as u8
        });
        let mut soup = TriangleSoup::new();
        marching_cubes(&vol, 127.5, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut soup);
        let q = 1_048_576.0;
        let key = |v: Vec3| {
            ((v.x * q).round() as i64, (v.y * q).round() as i64, (v.z * q).round() as i64)
        };
        let hi = 8i64 * q as i64;
        let on_boundary = |k: (i64, i64, i64)| {
            k.0 == 0 || k.1 == 0 || k.2 == 0 || k.0 == hi || k.1 == hi || k.2 == hi
        };
        let mut edges = std::collections::HashMap::new();
        for t in soup.triangles() {
            for i in 0..3 {
                let a = key(t.v[i]);
                let b = key(t.v[(i + 1) % 3]);
                let e = if a < b { (a, b) } else { (b, a) };
                *edges.entry(e).or_insert(0u32) += 1;
            }
        }
        for (e, c) in edges {
            if on_boundary(e.0) && on_boundary(e.1) {
                continue; // surface may legitimately end at the volume edge
            }
            prop_assert!(c % 2 == 0, "edge {e:?} has odd parity {c}: crack");
        }
    }

    #[test]
    fn mt_and_mc_agree_on_cell_activity(seed in any::<u64>()) {
        // both extractors produce geometry in exactly the same set of cells
        // (surface area agreement is checked elsewhere; here: emptiness)
        let dims = Dims3::new(6, 6, 6);
        let vol = Volume::<u8>::generate(dims, |x, y, z| {
            (oociso_volume::noise::splitmix64(
                seed ^ ((x + 17 * y + 389 * z) as u64)) & 0xff) as u8
        });
        let mut mc = TriangleSoup::new();
        marching_cubes(&vol, 127.5, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut mc);
        let mut mt = TriangleSoup::new();
        marching_tetrahedra(&vol, 127.5, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), &mut mt);
        prop_assert_eq!(mc.is_empty(), mt.is_empty());
        if !mc.is_empty() {
            let ratio = mt.area() / mc.area().max(1e-9);
            prop_assert!((0.7..1.4).contains(&ratio), "area ratio {ratio}");
        }
    }
}

// ---------------------------------------------------------------------------
// Slab kernel ⇔ reference kernel equivalence over the field zoo.
// ---------------------------------------------------------------------------

use oociso_march::{marching_cubes_indexed, IndexedMesh, SlabScratch};
use oociso_volume::field::{FieldExt, GyroidField, NoiseField, SphereField};
use oociso_volume::ScalarValue;

use oociso_march::canonical_triangles as canon;

/// One volume of the zoo, quantized to scalar type `S`.
fn zoo_volume<S: ScalarValue>(kind: usize, seed: u64, dims: Dims3) -> Volume<S> {
    match kind {
        0 => SphereField::centered(0.25 + (seed % 5) as f32 * 0.04, 128.0).sample(dims),
        1 => GyroidField {
            cells: 2.0 + (seed % 4) as f32,
            level: 128.0,
            amplitude: 80.0,
        }
        .sample(dims),
        _ => NoiseField {
            seed,
            frequency: 3.0,
            octaves: 3,
            lo: 0.0,
            hi: 255.0,
        }
        .sample(dims),
    }
}

/// Assert the slab kernel, the reference kernel, and the IndexedMesh → soup
/// round-trip all agree on `vol`.
fn assert_kernels_equivalent<S: ScalarValue>(vol: &Volume<S>, iso: f32) -> Result<(), String> {
    let origin = Vec3::new(-4.0, 7.0, 1.0);
    let scale = Vec3::new(1.0, 1.0, 1.0);
    let mut reference = TriangleSoup::new();
    let ref_stats = marching_cubes(vol, iso, origin, scale, &mut reference);
    let mut mesh = IndexedMesh::new();
    let mut scratch = SlabScratch::new();
    let slab_stats = marching_cubes_indexed(vol, iso, origin, scale, &mut mesh, &mut scratch);
    if ref_stats != slab_stats {
        return Err(format!("stats differ: {ref_stats:?} vs {slab_stats:?}"));
    }
    let roundtrip = mesh.to_soup();
    if roundtrip.len() != mesh.len() {
        return Err("IndexedMesh::to_soup changed triangle count".into());
    }
    let a = canon(&reference);
    let b = canon(&roundtrip);
    if a != b {
        return Err(format!(
            "canonical triangle multisets differ: {} vs {} triangles, first diff at {:?}",
            a.len(),
            b.len(),
            a.iter().zip(&b).position(|(x, y)| x != y),
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slab_kernel_equals_reference_over_zoo(
        kind in 0usize..3,
        seed in any::<u64>(),
        // odd, non-cubic dims exercise edge clamping and mask tails
        nx in 2usize..18,
        ny in 2usize..14,
        nz in 2usize..12,
        iso10 in 200u32..2300,
    ) {
        let dims = Dims3::new(nx | 1, ny | 1, nz | 1); // force odd
        let iso = iso10 as f32 / 10.0;
        let vu8: Volume<u8> = zoo_volume(kind, seed, dims);
        prop_assert!(assert_kernels_equivalent(&vu8, iso).is_ok(),
            "u8 {:?}", assert_kernels_equivalent(&vu8, iso));
        let vu16: Volume<u16> = zoo_volume(kind, seed, dims);
        prop_assert!(assert_kernels_equivalent(&vu16, iso).is_ok(),
            "u16 {:?}", assert_kernels_equivalent(&vu16, iso));
        let vf32: Volume<f32> = zoo_volume(kind, seed, dims);
        prop_assert!(assert_kernels_equivalent(&vf32, iso).is_ok(),
            "f32 {:?}", assert_kernels_equivalent(&vf32, iso));
    }

    #[test]
    fn slab_kernel_equals_reference_on_random_u8_fields(
        seed in any::<u64>(),
        n in 3usize..11,
    ) {
        // pure per-vertex noise: maximal case-table coverage incl. ambiguous
        // configs, many degenerate-ish crossings near the isovalue
        let dims = Dims3::cube(n | 1);
        let vol = Volume::<u8>::generate(dims, |x, y, z| {
            (oociso_volume::noise::splitmix64(
                seed ^ ((x + 131 * y + 1777 * z) as u64)) & 0xff) as u8
        });
        let got = assert_kernels_equivalent(&vol, 127.5);
        prop_assert!(got.is_ok(), "{got:?}");
    }
}
