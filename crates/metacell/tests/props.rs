//! Property tests for metacell layout, records and scans.

use oociso_metacell::{scan_volume, MetacellLayout, MetacellRecord};
use oociso_volume::{Dims3, ScalarValue, Volume};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Dims3> {
    (2usize..28, 2usize..28, 2usize..20).prop_map(|(x, y, z)| Dims3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_covers_every_vertex_box(dims in dims_strategy(), k in 2usize..10) {
        let layout = MetacellLayout::new(dims, k);
        // each metacell's vertex box is non-empty and within bounds; the
        // union of cell ownership covers all cells exactly once
        let mut cell_owner = vec![0u32; dims.num_cells()];
        let cell_dims = Dims3::new(
            (dims.nx - 1).max(1), (dims.ny - 1).max(1), (dims.nz - 1).max(1));
        for id in layout.ids() {
            let ((x0, y0, z0), (x1, y1, z1)) = layout.vertex_box(id);
            prop_assert!(x0 < x1 && y0 < y1 && z0 < z1);
            prop_assert!(x1 <= dims.nx && y1 <= dims.ny && z1 <= dims.nz);
            for cz in z0..z1 - 1 {
                for cy in y0..y1 - 1 {
                    for cx in x0..x1 - 1 {
                        cell_owner[cell_dims.index(cx, cy, cz)] += 1;
                    }
                }
            }
        }
        prop_assert!(cell_owner.iter().all(|&c| c == 1));
    }

    #[test]
    fn record_roundtrip_random_payload(
        dims in dims_strategy(),
        k in 2usize..10,
        seed in any::<u64>(),
    ) {
        let vol = Volume::<u8>::generate(dims, |x, y, z| {
            (oociso_volume::noise::splitmix64(seed ^ ((x * 73 + y * 179 + z * 283) as u64)) & 0xff) as u8
        });
        let layout = MetacellLayout::new(dims, k);
        for id in layout.ids().step_by(3) {
            let rec = MetacellRecord::from_volume(&vol, &layout, id);
            let bytes = rec.encode();
            prop_assert_eq!(bytes.len(), layout.record_len(id, 1));
            let (back, used) = MetacellRecord::<u8>::decode(&bytes, &layout);
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(&back, &rec);
            // vmin in header really is the payload minimum
            prop_assert_eq!(back.vmin, *rec.scalars.iter().min().unwrap());
        }
    }

    #[test]
    fn scan_intervals_bound_payloads(dims in dims_strategy(), seed in any::<u64>()) {
        let vol = Volume::<u8>::generate(dims, |x, y, z| {
            ((x * 31 + y * 17 + z * 11) as u64 ^ seed) as u8
        });
        let layout = MetacellLayout::new(dims, 5);
        let (kept, stats) = scan_volume(&vol, &layout);
        prop_assert_eq!(stats.kept_metacells + stats.culled_metacells, stats.total_metacells);
        for b in &kept {
            let lo = b.record.scalars.iter().map(|s| s.key()).min().unwrap();
            let hi = b.record.scalars.iter().map(|s| s.key()).max().unwrap();
            prop_assert_eq!(b.interval.min_key, lo);
            prop_assert_eq!(b.interval.max_key, hi);
            prop_assert!(lo < hi, "constant metacells must be culled");
        }
    }
}
