//! Metacell value intervals.
//!
//! Every metacell carries the interval `(vmin, vmax)` of its scalar field.
//! A metacell is *active* for isovalue `λ` iff `vmin ≤ λ ≤ vmax`. Intervals
//! are stored as monotone `u32` keys (see `oociso_volume::scalar`), making the
//! indexing structures scalar-type agnostic.

/// The `(vmin, vmax)` interval of one metacell, in key space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MetacellInterval {
    /// Metacell ID (linear index in the metacell grid).
    pub id: u32,
    /// Minimum scalar key over the metacell's vertices.
    pub min_key: u32,
    /// Maximum scalar key over the metacell's vertices.
    pub max_key: u32,
}

impl MetacellInterval {
    /// Construct, validating `min ≤ max`.
    pub fn new(id: u32, min_key: u32, max_key: u32) -> Self {
        assert!(min_key <= max_key, "interval endpoints out of order");
        MetacellInterval {
            id,
            min_key,
            max_key,
        }
    }

    /// Whether the isovalue key stabs this interval.
    #[inline]
    pub fn contains(&self, iso_key: u32) -> bool {
        self.min_key <= iso_key && iso_key <= self.max_key
    }

    /// Whether all vertices share one value (constant metacell — culled).
    #[inline]
    pub fn is_constant(&self) -> bool {
        self.min_key == self.max_key
    }
}

/// Brute-force active set: reference implementation the property tests use to
/// validate every indexing structure.
pub fn brute_force_active(intervals: &[MetacellInterval], iso_key: u32) -> Vec<u32> {
    let mut ids: Vec<u32> = intervals
        .iter()
        .filter(|iv| iv.contains(iso_key))
        .map(|iv| iv.id)
        .collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_inclusive() {
        let iv = MetacellInterval::new(0, 10, 20);
        assert!(iv.contains(10));
        assert!(iv.contains(15));
        assert!(iv.contains(20));
        assert!(!iv.contains(9));
        assert!(!iv.contains(21));
    }

    #[test]
    fn constant_detection() {
        assert!(MetacellInterval::new(1, 7, 7).is_constant());
        assert!(!MetacellInterval::new(1, 7, 8).is_constant());
    }

    #[test]
    #[should_panic]
    fn inverted_interval_rejected() {
        let _ = MetacellInterval::new(0, 5, 4);
    }

    #[test]
    fn brute_force_sorted_and_filtered() {
        let ivs = vec![
            MetacellInterval::new(3, 0, 10),
            MetacellInterval::new(1, 5, 15),
            MetacellInterval::new(2, 11, 20),
        ];
        assert_eq!(brute_force_active(&ivs, 7), vec![1, 3]);
        assert_eq!(brute_force_active(&ivs, 11), vec![1, 2]);
        assert_eq!(brute_force_active(&ivs, 25), Vec::<u32>::new());
    }
}
