//! Metacell coordinate math.

use oociso_volume::Dims3;

/// Partition of a volume into metacells of `k×k×k` vertices.
///
/// Metacell `(i, j, l)` owns cells `[(k-1)·i, (k-1)·(i+1)) × …` and carries the
/// vertex box `[(k-1)·i, min((k-1)·(i+1)+1, n)) × …`: neighbouring metacells
/// share one vertex layer, so every cell's 8 corners live inside exactly one
/// metacell. Metacells at the high ends of the axes may be smaller. The paper
/// uses `k = 9` (9×9×9 vertices = 8×8×8 cells).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetacellLayout {
    volume_dims: Dims3,
    k: usize,
    grid: Dims3,
}

impl MetacellLayout {
    /// Partition `volume_dims` with metacells of `k` vertices per axis (`k ≥ 2`).
    pub fn new(volume_dims: Dims3, k: usize) -> Self {
        assert!(k >= 2, "metacells need at least 2 vertices per axis");
        assert!(
            volume_dims.nx >= 2 && volume_dims.ny >= 2 && volume_dims.nz >= 2,
            "volume must contain at least one cell"
        );
        let span = k - 1; // cells per metacell per axis
        let grid = Dims3::new(
            (volume_dims.nx - 1).div_ceil(span),
            (volume_dims.ny - 1).div_ceil(span),
            (volume_dims.nz - 1).div_ceil(span),
        );
        MetacellLayout {
            volume_dims,
            k,
            grid,
        }
    }

    /// The paper's layout: 9×9×9-vertex metacells.
    pub fn paper(volume_dims: Dims3) -> Self {
        Self::new(volume_dims, 9)
    }

    /// Vertices per axis per (full) metacell.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Dimensions of the underlying volume (vertices).
    pub fn volume_dims(&self) -> Dims3 {
        self.volume_dims
    }

    /// Metacell grid dimensions.
    pub fn grid(&self) -> Dims3 {
        self.grid
    }

    /// Total number of metacells.
    pub fn num_metacells(&self) -> usize {
        self.grid.num_vertices()
    }

    /// Metacell grid coordinates of a linear ID.
    #[inline]
    pub fn coords(&self, id: u32) -> (usize, usize, usize) {
        self.grid.coords(id as usize)
    }

    /// Linear ID of metacell grid coordinates.
    #[inline]
    pub fn id(&self, mx: usize, my: usize, mz: usize) -> u32 {
        self.grid.index(mx, my, mz) as u32
    }

    /// Vertex box `[(x0,y0,z0), (x1,y1,z1))` of a metacell (exclusive end,
    /// clamped to the volume).
    pub fn vertex_box(&self, id: u32) -> ((usize, usize, usize), (usize, usize, usize)) {
        let (mx, my, mz) = self.coords(id);
        let span = self.k - 1;
        let x0 = mx * span;
        let y0 = my * span;
        let z0 = mz * span;
        let x1 = (x0 + self.k).min(self.volume_dims.nx);
        let y1 = (y0 + self.k).min(self.volume_dims.ny);
        let z1 = (z0 + self.k).min(self.volume_dims.nz);
        ((x0, y0, z0), (x1, y1, z1))
    }

    /// Dimensions (vertices) of one metacell after edge clamping.
    pub fn cell_dims(&self, id: u32) -> Dims3 {
        let ((x0, y0, z0), (x1, y1, z1)) = self.vertex_box(id);
        Dims3::new(x1 - x0, y1 - y0, z1 - z0)
    }

    /// Number of vertices in one metacell.
    pub fn num_vertices(&self, id: u32) -> usize {
        self.cell_dims(id).num_vertices()
    }

    /// Number of cells owned by one metacell.
    pub fn num_cells(&self, id: u32) -> usize {
        self.cell_dims(id).num_cells()
    }

    /// On-disk record length for a metacell with `scalar_bytes`-wide samples:
    /// 4-byte ID + one `vmin` sample + the payload.
    pub fn record_len(&self, id: u32, scalar_bytes: usize) -> usize {
        4 + scalar_bytes + self.num_vertices(id) * scalar_bytes
    }

    /// Record length of a *full* (non-clamped) metacell. For the paper's
    /// parameters (`k = 9`, u8) this is the famous 734 bytes.
    pub fn full_record_len(&self, scalar_bytes: usize) -> usize {
        4 + scalar_bytes + self.k * self.k * self.k * scalar_bytes
    }

    /// Iterate over all metacell IDs.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.num_metacells() as u32
    }

    /// ID of the metacell owning cell `(cx, cy, cz)`.
    pub fn metacell_of_cell(&self, cx: usize, cy: usize, cz: usize) -> u32 {
        let span = self.k - 1;
        self.id(
            (cx / span).min(self.grid.nx - 1),
            (cy / span).min(self.grid.ny - 1),
            (cz / span).min(self.grid.nz - 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        // full RM grid: 2048×2048×1920 vertices → 256×256×240 metacells
        let l = MetacellLayout::paper(Dims3::new(2048, 2048, 1920));
        assert_eq!(l.grid(), Dims3::new(256, 256, 240));
        assert_eq!(l.full_record_len(1), 734); // the paper's record size
    }

    #[test]
    fn demo_dimensions() {
        let l = MetacellLayout::paper(Dims3::new(256, 256, 240));
        assert_eq!(l.grid(), Dims3::new(32, 32, 30));
    }

    #[test]
    fn exact_partition_no_clamping() {
        // 17 vertices = 16 cells = two full 9-vertex metacells sharing layer 8
        let l = MetacellLayout::new(Dims3::new(17, 17, 17), 9);
        assert_eq!(l.grid(), Dims3::cube(2));
        for id in l.ids() {
            assert_eq!(l.cell_dims(id), Dims3::cube(9));
        }
        let ((x0, ..), (x1, ..)) = l.vertex_box(l.id(1, 0, 0));
        assert_eq!((x0, x1), (8, 17));
    }

    #[test]
    fn edge_clamping() {
        // 12 vertices = 11 cells → one full metacell (9 verts) + one with 4
        let l = MetacellLayout::new(Dims3::new(12, 9, 9), 9);
        assert_eq!(l.grid(), Dims3::new(2, 1, 1));
        assert_eq!(l.cell_dims(l.id(0, 0, 0)), Dims3::new(9, 9, 9));
        assert_eq!(l.cell_dims(l.id(1, 0, 0)), Dims3::new(4, 9, 9));
    }

    #[test]
    fn every_cell_owned_exactly_once() {
        let dims = Dims3::new(21, 13, 10);
        let l = MetacellLayout::new(dims, 5);
        let mut owned = vec![0u32; dims.num_cells()];
        let cell_dims = Dims3::new(dims.nx - 1, dims.ny - 1, dims.nz - 1);
        for id in l.ids() {
            let ((x0, y0, z0), (x1, y1, z1)) = l.vertex_box(id);
            // cells of this metacell: [x0, x1-1) × …
            for cz in z0..z1 - 1 {
                for cy in y0..y1 - 1 {
                    for cx in x0..x1 - 1 {
                        owned[cell_dims.index(cx, cy, cz)] += 1;
                        assert_eq!(l.metacell_of_cell(cx, cy, cz), id);
                    }
                }
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "cells must partition");
    }

    #[test]
    fn record_len_accounts_for_clamping() {
        let l = MetacellLayout::new(Dims3::new(12, 9, 9), 9);
        assert_eq!(l.record_len(l.id(0, 0, 0), 1), 734);
        assert_eq!(l.record_len(l.id(1, 0, 0), 1), 4 + 1 + 4 * 9 * 9);
        // u16 doubles payload and vmin
        assert_eq!(l.record_len(l.id(0, 0, 0), 2), 4 + 2 + 729 * 2);
    }

    #[test]
    fn id_coord_roundtrip() {
        let l = MetacellLayout::new(Dims3::new(33, 25, 17), 9);
        for id in l.ids() {
            let (x, y, z) = l.coords(id);
            assert_eq!(l.id(x, y, z), id);
        }
    }

    #[test]
    #[should_panic]
    fn k1_rejected() {
        let _ = MetacellLayout::new(Dims3::cube(8), 1);
    }
}
