//! On-disk metacell records.
//!
//! Record layout (matching section 7 of the paper):
//!
//! ```text
//! [ id: u32 LE ][ vmin: S ][ vertex scalars: S × (cx·cy·cz), x fastest ]
//! ```
//!
//! For the paper's parameters (9×9×9 vertices, one-byte scalars) a full record
//! is exactly `4 + 1 + 729 = 734` bytes. The record intentionally stores
//! `vmin` in the header: Case 2 of the query streams a brick front-to-back and
//! stops at the first record with `vmin > λ` without touching the payload.
//! `vmax` is *not* stored — the brick it lives in encodes it.

use crate::layout::MetacellLayout;
use oociso_volume::{ScalarValue, Volume};

/// A decoded metacell record.
#[derive(Clone, Debug, PartialEq)]
pub struct MetacellRecord<S: ScalarValue> {
    /// Metacell ID (linear index in the metacell grid).
    pub id: u32,
    /// Minimum scalar over the payload (redundant with the payload; kept in
    /// the header for streaming early-exit).
    pub vmin: S,
    /// Vertex scalars, x fastest, matching [`MetacellLayout::vertex_box`].
    pub scalars: Vec<S>,
}

impl<S: ScalarValue> MetacellRecord<S> {
    /// Cut the record for metacell `id` out of a volume.
    pub fn from_volume(vol: &Volume<S>, layout: &MetacellLayout, id: u32) -> Self {
        let (lo, hi) = layout.vertex_box(id);
        let sub = vol.extract_box(lo, hi);
        let mut vmin = sub.data()[0];
        for &s in &sub.data()[1..] {
            vmin = vmin.min_s(s);
        }
        MetacellRecord {
            id,
            vmin,
            scalars: sub.into_vec(),
        }
    }

    /// Maximum scalar over the payload.
    pub fn vmax(&self) -> S {
        let mut m = self.scalars[0];
        for &s in &self.scalars[1..] {
            m = m.max_s(s);
        }
        m
    }

    /// Whether every vertex holds the same value (such records are culled).
    pub fn is_constant(&self) -> bool {
        self.vmin.key() == self.vmax().key()
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + S::BYTES + self.scalars.len() * S::BYTES
    }

    /// Serialize to the on-disk format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.encoded_len()];
        out[..4].copy_from_slice(&self.id.to_le_bytes());
        self.vmin.write_le(&mut out[4..4 + S::BYTES]);
        let mut at = 4 + S::BYTES;
        for &s in &self.scalars {
            s.write_le(&mut out[at..at + S::BYTES]);
            at += S::BYTES;
        }
        out
    }

    /// Deserialize one record; the layout determines the payload length from
    /// the decoded ID. Returns the record and the number of bytes consumed.
    pub fn decode(bytes: &[u8], layout: &MetacellLayout) -> (Self, usize) {
        let id = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let vmin = S::read_le(&bytes[4..]);
        let nverts = layout.num_vertices(id);
        let mut scalars = Vec::with_capacity(nverts);
        let mut at = 4 + S::BYTES;
        for _ in 0..nverts {
            scalars.push(S::read_le(&bytes[at..]));
            at += S::BYTES;
        }
        (MetacellRecord { id, vmin, scalars }, at)
    }

    /// Decode one record's payload into a caller-owned scalar buffer
    /// (cleared and refilled), returning `(id, vmin, bytes_consumed)`.
    ///
    /// This is the zero-allocation twin of [`MetacellRecord::decode`] for hot
    /// extraction loops: a worker decodes every record of its batch into the
    /// same buffer, hands the scalars to the kernel, and takes them back —
    /// no per-record `Vec` ever hits the allocator.
    pub fn decode_scalars_into(
        bytes: &[u8],
        layout: &MetacellLayout,
        scalars: &mut Vec<S>,
    ) -> (u32, S, usize) {
        let id = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let vmin = S::read_le(&bytes[4..]);
        let nverts = layout.num_vertices(id);
        scalars.clear();
        scalars.reserve(nverts);
        let mut at = 4 + S::BYTES;
        for _ in 0..nverts {
            scalars.push(S::read_le(&bytes[at..]));
            at += S::BYTES;
        }
        (id, vmin, at)
    }

    /// Peek only the header `(id, vmin)` without decoding the payload —
    /// Case 2's streaming early-exit path.
    pub fn peek_header(bytes: &[u8]) -> (u32, S) {
        let id = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        (id, S::read_le(&bytes[4..]))
    }

    /// Reconstruct the metacell's local volume (for triangulation).
    pub fn to_volume(&self, layout: &MetacellLayout) -> Volume<S> {
        Volume::from_vec(layout.cell_dims(self.id), self.scalars.clone())
    }

    /// Reconstruct the local volume without cloning the payload.
    pub fn into_volume(self, layout: &MetacellLayout) -> Volume<S> {
        Volume::from_vec(layout.cell_dims(self.id), self.scalars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_volume::Dims3;

    fn layout_and_volume() -> (MetacellLayout, Volume<u8>) {
        let dims = Dims3::new(17, 17, 17);
        let vol = Volume::generate(dims, |x, y, z| (x * 3 + y * 5 + z * 7) as u8);
        (MetacellLayout::new(dims, 9), vol)
    }

    #[test]
    fn full_record_is_734_bytes_for_paper_params() {
        let (layout, vol) = layout_and_volume();
        let rec = MetacellRecord::from_volume(&vol, &layout, 0);
        assert_eq!(rec.encoded_len(), 734);
        assert_eq!(rec.encode().len(), 734);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (layout, vol) = layout_and_volume();
        for id in layout.ids() {
            let rec = MetacellRecord::from_volume(&vol, &layout, id);
            let bytes = rec.encode();
            let (back, used) = MetacellRecord::<u8>::decode(&bytes, &layout);
            assert_eq!(used, bytes.len());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn vmin_vmax_match_payload() {
        let (layout, vol) = layout_and_volume();
        let rec = MetacellRecord::from_volume(&vol, &layout, 3);
        let lo = rec.scalars.iter().copied().fold(255u8, u8::min);
        let hi = rec.scalars.iter().copied().fold(0u8, u8::max);
        assert_eq!(rec.vmin, lo);
        assert_eq!(rec.vmax(), hi);
    }

    #[test]
    fn decode_scalars_into_matches_decode() {
        let (layout, vol) = layout_and_volume();
        let mut buf: Vec<u8> = Vec::new();
        let mut scalars: Vec<u8> = Vec::new();
        for id in layout.ids() {
            let rec = MetacellRecord::from_volume(&vol, &layout, id);
            buf = rec.encode();
            let (did, dvmin, used) =
                MetacellRecord::<u8>::decode_scalars_into(&buf, &layout, &mut scalars);
            assert_eq!(did, rec.id);
            assert_eq!(dvmin, rec.vmin);
            assert_eq!(used, buf.len());
            assert_eq!(scalars, rec.scalars, "id {id}");
        }
        // the same buffer was reused for every record
        assert!(!buf.is_empty());
    }

    #[test]
    fn peek_header_matches_decode() {
        let (layout, vol) = layout_and_volume();
        let rec = MetacellRecord::from_volume(&vol, &layout, 5);
        let bytes = rec.encode();
        let (id, vmin) = MetacellRecord::<u8>::peek_header(&bytes);
        assert_eq!(id, 5);
        assert_eq!(vmin, rec.vmin);
    }

    #[test]
    fn constant_metacell_detected() {
        let dims = Dims3::cube(9);
        let vol = Volume::<u8>::filled(dims, 42);
        let layout = MetacellLayout::new(dims, 9);
        let rec = MetacellRecord::from_volume(&vol, &layout, 0);
        assert!(rec.is_constant());
        assert_eq!(rec.vmin, 42);
        assert_eq!(rec.vmax(), 42);
    }

    #[test]
    fn to_volume_reconstructs_geometry() {
        let (layout, vol) = layout_and_volume();
        let id = layout.id(1, 1, 1);
        let rec = MetacellRecord::from_volume(&vol, &layout, id);
        let local = rec.to_volume(&layout);
        let ((x0, y0, z0), _) = layout.vertex_box(id);
        for z in 0..local.dims().nz {
            for y in 0..local.dims().ny {
                for x in 0..local.dims().nx {
                    assert_eq!(local.get(x, y, z), vol.get(x0 + x, y0 + y, z0 + z));
                }
            }
        }
    }

    #[test]
    fn u16_record_roundtrip() {
        let dims = Dims3::new(9, 9, 9);
        let vol = Volume::<u16>::generate(dims, |x, y, z| (x * 311 + y * 97 + z * 1000) as u16);
        let layout = MetacellLayout::new(dims, 9);
        let rec = MetacellRecord::from_volume(&vol, &layout, 0);
        let bytes = rec.encode();
        assert_eq!(bytes.len(), 4 + 2 + 729 * 2);
        let (back, _) = MetacellRecord::<u16>::decode(&bytes, &layout);
        assert_eq!(back, rec);
    }
}
