//! Metacell partitioning and preprocessing.
//!
//! The paper partitions the volume into *metacells*: clusters of neighbouring
//! cells of roughly one disk block each. For the Richtmyer–Meshkov grid it
//! uses 9×9×9-vertex subcubes (8×8×8 cells, with one shared vertex layer
//! between neighbours), stored as 734-byte records: a 4-byte ID, the metacell
//! minimum value, and the 9³ one-byte scalars in a predefined order. Metacells
//! whose vertices are all equal can never contain an isosurface and are
//! dropped — about 50% of the RM dataset.
//!
//! This crate implements that layer exactly:
//!
//! * [`layout::MetacellLayout`] — volume ↔ metacell coordinate math with edge
//!   clamping;
//! * [`record::MetacellRecord`] — the on-disk record format (byte-identical
//!   734-byte records for full 9×9×9 u8 metacells);
//! * [`interval::MetacellInterval`] — the `(vmin, vmax)` interval fed to the
//!   indexing structures;
//! * [`build`] — the preprocessing scan (in-memory volumes or streamed
//!   z-slabs), with constant-metacell culling and statistics.

pub mod build;
pub mod interval;
pub mod layout;
pub mod record;

pub use build::{scan_reader, scan_volume, BuiltMetacell, PreprocessStats};
pub use interval::MetacellInterval;
pub use layout::MetacellLayout;
pub use record::MetacellRecord;
