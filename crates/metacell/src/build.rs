//! Preprocessing scan: volume → metacell records + intervals.
//!
//! The paper's preprocessing "scans the data once and creates the metacells",
//! dropping those whose vertices all share one value (≈50% savings on the RM
//! dataset). Two entry points:
//!
//! * [`scan_volume`] — over an in-memory volume (tests, small steps), with a
//!   rayon-parallel variant [`scan_volume_par`];
//! * [`scan_reader`] — over a raw volume file streamed in z-slabs of `k`
//!   layers with one overlapping layer, so only `O(nx·ny·k)` samples are ever
//!   resident: true out-of-core preprocessing.

use crate::interval::MetacellInterval;
use crate::layout::MetacellLayout;
use crate::record::MetacellRecord;
use oociso_volume::io::RawVolumeReader;
use oociso_volume::{Dims3, ScalarValue, Volume};
use rayon::prelude::*;
use std::io;

/// One surviving metacell: its interval plus its record.
#[derive(Clone, Debug)]
pub struct BuiltMetacell<S: ScalarValue> {
    pub interval: MetacellInterval,
    pub record: MetacellRecord<S>,
}

/// Statistics of a preprocessing run (paper §7: "5,592,802 metacells that
/// occupy … nearly 50% smaller than the original").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Metacells in the full partition.
    pub total_metacells: usize,
    /// Metacells kept (non-constant).
    pub kept_metacells: usize,
    /// Metacells culled as constant.
    pub culled_metacells: usize,
    /// Bytes of the kept records.
    pub kept_bytes: u64,
    /// Bytes of the raw input volume.
    pub raw_bytes: u64,
}

impl PreprocessStats {
    /// Fraction of metacells culled.
    pub fn culled_fraction(&self) -> f64 {
        if self.total_metacells == 0 {
            0.0
        } else {
            self.culled_metacells as f64 / self.total_metacells as f64
        }
    }

    /// Kept bytes relative to raw input (the paper reports ≈0.5 for RM).
    pub fn size_ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            0.0
        } else {
            self.kept_bytes as f64 / self.raw_bytes as f64
        }
    }
}

fn build_one<S: ScalarValue>(
    vol: &Volume<S>,
    layout: &MetacellLayout,
    id: u32,
) -> BuiltMetacell<S> {
    let record = MetacellRecord::from_volume(vol, layout, id);
    let interval = MetacellInterval::new(id, record.vmin.key(), record.vmax().key());
    BuiltMetacell { interval, record }
}

/// Scan an in-memory volume; returns surviving metacells in ID order plus stats.
pub fn scan_volume<S: ScalarValue>(
    vol: &Volume<S>,
    layout: &MetacellLayout,
) -> (Vec<BuiltMetacell<S>>, PreprocessStats) {
    assert_eq!(vol.dims(), layout.volume_dims(), "layout/volume mismatch");
    let mut kept = Vec::new();
    let mut stats = PreprocessStats {
        total_metacells: layout.num_metacells(),
        raw_bytes: vol.dims().raw_bytes::<S>() as u64,
        ..Default::default()
    };
    for id in layout.ids() {
        let built = build_one(vol, layout, id);
        if built.interval.is_constant() {
            stats.culled_metacells += 1;
        } else {
            stats.kept_bytes += built.record.encoded_len() as u64;
            stats.kept_metacells += 1;
            kept.push(built);
        }
    }
    (kept, stats)
}

/// Rayon-parallel variant of [`scan_volume`] (parallel over metacell IDs;
/// output order and stats identical to the sequential scan).
pub fn scan_volume_par<S: ScalarValue>(
    vol: &Volume<S>,
    layout: &MetacellLayout,
) -> (Vec<BuiltMetacell<S>>, PreprocessStats) {
    assert_eq!(vol.dims(), layout.volume_dims(), "layout/volume mismatch");
    let ids: Vec<u32> = layout.ids().collect();
    let kept: Vec<BuiltMetacell<S>> = ids
        .par_iter()
        .filter_map(|&id| {
            let built = build_one(vol, layout, id);
            (!built.interval.is_constant()).then_some(built)
        })
        .collect();
    let mut stats = PreprocessStats {
        total_metacells: layout.num_metacells(),
        raw_bytes: vol.dims().raw_bytes::<S>() as u64,
        kept_metacells: kept.len(),
        culled_metacells: layout.num_metacells() - kept.len(),
        kept_bytes: 0,
    };
    stats.kept_bytes = kept.iter().map(|b| b.record.encoded_len() as u64).sum();
    (kept, stats)
}

/// Out-of-core scan over a raw volume file: z-slabs of `k` layers with one
/// layer of overlap are streamed through `sink` one metacell at a time.
/// Constant metacells are culled before reaching the sink. Returns stats.
///
/// The sink is fallible: a sink that writes records to disk (the second
/// preprocessing pass) surfaces a full disk or closed file as `Err` from this
/// function instead of having to panic mid-stream.
pub fn scan_reader<S: ScalarValue>(
    reader: &mut RawVolumeReader<S>,
    k: usize,
    mut sink: impl FnMut(BuiltMetacell<S>) -> io::Result<()>,
) -> io::Result<PreprocessStats> {
    let dims = reader.dims();
    let layout = MetacellLayout::new(dims, k);
    let grid = layout.grid();
    let span = k - 1;
    let mut stats = PreprocessStats {
        total_metacells: layout.num_metacells(),
        raw_bytes: dims.raw_bytes::<S>() as u64,
        ..Default::default()
    };
    for mz in 0..grid.nz {
        let z0 = mz * span;
        let z1 = (z0 + k).min(dims.nz);
        let slab = reader.read_slab(z0, z1 - z0)?;
        // The slab is a volume of dims (nx, ny, z1-z0); reuse the in-memory
        // builder on a single-metacell-layer layout shifted into slab space.
        let slab_layout = MetacellLayout::new(Dims3::new(dims.nx, dims.ny, z1 - z0), k);
        debug_assert_eq!(slab_layout.grid().nx, grid.nx);
        debug_assert_eq!(slab_layout.grid().nz, 1);
        for my in 0..grid.ny {
            for mx in 0..grid.nx {
                let slab_id = slab_layout.id(mx, my, 0);
                let global_id = layout.id(mx, my, mz);
                let record = MetacellRecord::from_volume(&slab, &slab_layout, slab_id);
                let record = MetacellRecord {
                    id: global_id,
                    ..record
                };
                let interval =
                    MetacellInterval::new(global_id, record.vmin.key(), record.vmax().key());
                if interval.is_constant() {
                    stats.culled_metacells += 1;
                } else {
                    stats.kept_bytes += record.encoded_len() as u64;
                    stats.kept_metacells += 1;
                    sink(BuiltMetacell { interval, record })?;
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_volume::io::write_volume;
    use oociso_volume::Dims3;

    fn sphere_volume(dims: Dims3) -> Volume<u8> {
        Volume::generate(dims, |x, y, z| {
            let dx = x as f32 - dims.nx as f32 / 2.0;
            let dy = y as f32 - dims.ny as f32 / 2.0;
            let dz = z as f32 - dims.nz as f32 / 2.0;
            let d = (dx * dx + dy * dy + dz * dz).sqrt();
            (200.0 - d * 20.0).clamp(0.0, 255.0) as u8
        })
    }

    #[test]
    fn constant_volume_culls_everything() {
        let dims = Dims3::new(17, 17, 17);
        let vol = Volume::<u8>::filled(dims, 9);
        let layout = MetacellLayout::new(dims, 9);
        let (kept, stats) = scan_volume(&vol, &layout);
        assert!(kept.is_empty());
        assert_eq!(stats.culled_metacells, 8);
        assert_eq!(stats.culled_fraction(), 1.0);
    }

    #[test]
    fn sphere_keeps_boundary_metacells() {
        let dims = Dims3::new(33, 33, 33);
        let vol = sphere_volume(dims);
        let layout = MetacellLayout::new(dims, 9);
        let (kept, stats) = scan_volume(&vol, &layout);
        assert!(stats.kept_metacells > 0);
        assert!(stats.culled_metacells > 0, "far corners are constant 0");
        assert_eq!(stats.kept_metacells + stats.culled_metacells, 64);
        assert_eq!(kept.len(), stats.kept_metacells);
        // intervals really bound the payload
        for b in &kept {
            assert!(b.interval.min_key < b.interval.max_key);
            assert_eq!(b.interval.min_key, b.record.vmin.key());
            assert_eq!(b.interval.max_key, b.record.vmax().key());
        }
    }

    #[test]
    fn par_scan_matches_sequential() {
        let dims = Dims3::new(25, 25, 25);
        let vol = sphere_volume(dims);
        let layout = MetacellLayout::new(dims, 9);
        let (seq, s1) = scan_volume(&vol, &layout);
        let (par, s2) = scan_volume_par(&vol, &layout);
        assert_eq!(s1, s2);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.interval, b.interval);
            assert_eq!(a.record, b.record);
        }
    }

    #[test]
    fn reader_scan_matches_in_memory() {
        let dims = Dims3::new(25, 17, 21);
        let vol = sphere_volume(dims);
        let layout = MetacellLayout::new(dims, 9);
        let (expected, es) = scan_volume(&vol, &layout);

        let mut p = std::env::temp_dir();
        p.push(format!("oociso_build_{}.vol", std::process::id()));
        write_volume(&p, &vol).unwrap();
        let mut reader = RawVolumeReader::<u8>::open(&p).unwrap();
        let mut got = Vec::new();
        let rs = scan_reader(&mut reader, 9, |b| {
            got.push(b);
            Ok(())
        })
        .unwrap();
        std::fs::remove_file(&p).ok();

        assert_eq!(es, rs);
        assert_eq!(expected.len(), got.len());
        // reader emits per-slab (z-major) which matches ID order
        for (a, b) in expected.iter().zip(got.iter()) {
            assert_eq!(a.interval, b.interval);
            assert_eq!(a.record, b.record);
        }
    }

    #[test]
    fn scan_reader_propagates_sink_errors() {
        let dims = Dims3::new(25, 17, 21);
        let vol = sphere_volume(dims);
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_build_err_{}.vol", std::process::id()));
        write_volume(&p, &vol).unwrap();
        let mut reader = RawVolumeReader::<u8>::open(&p).unwrap();
        let mut calls = 0usize;
        let err = scan_reader(&mut reader, 9, |_b| {
            calls += 1;
            if calls == 3 {
                Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        std::fs::remove_file(&p).ok();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(calls, 3, "scan must stop at the failing sink call");
    }

    #[test]
    fn stats_size_ratio() {
        let dims = Dims3::new(17, 17, 17);
        let vol = sphere_volume(dims);
        let layout = MetacellLayout::new(dims, 9);
        let (_, stats) = scan_volume(&vol, &layout);
        let ratio = stats.size_ratio();
        assert!(ratio > 0.0 && ratio < 1.5, "ratio {ratio}");
    }
}
