//! Simulated visualization cluster.
//!
//! The paper's parallel algorithm runs on `p` nodes, each owning a local disk
//! with its stripe of every brick and a local copy of the (tiny) index. A
//! query proceeds with **zero communication**: every node walks its own
//! index, reads its own disk, triangulates its own metacells and renders
//! locally; only the final sort-last composite crosses the network.
//!
//! This crate reproduces that architecture with OS threads as nodes:
//!
//! * [`cluster::Cluster`] — build (stripe + index per node), open, and query;
//!   each node runs in its own thread against its own store file, streaming
//!   records through a bounded queue into its triangulation workers so the
//!   paper's phases (i) and (ii) overlap ([`cluster::ExtractMode`]).
//! * [`timing`] — per-node, per-phase reports: Active MetaCell (AMC) retrieval
//!   I/O, triangulation, rendering — the three metrics of Tables 2–5.
//! * [`model`] — the simulated-time composition: measured CPU phases combined
//!   with modeled disk (50 MB/s) and interconnect (10 Gbps) times, which is
//!   what lets a 2-core laptop reproduce the *shape* of an 8-node cluster's
//!   scaling curves (Figures 5–6).
//! * [`meta`] — on-disk cluster metadata so a preprocessed directory can be
//!   reopened.

pub mod cluster;
pub mod meta;
pub mod model;
pub mod timing;

pub use cluster::{
    Cluster, ClusterBuildOptions, ClusterExtraction, ExtractMode, ExtractOptions, LodSpec,
    DEFAULT_QUEUE_RECORDS,
};
pub use model::SimulatedTimeModel;
pub use timing::{LodReport, NodeReport, QueryReport};
