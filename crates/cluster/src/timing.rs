//! Per-phase timing reports.

use oociso_exio::IoSnapshot;
use std::time::Duration;

/// One node's measurements for one isosurface query — the row format of the
/// paper's Tables 2–5 (AMC retrieval, triangulation, rendering) plus I/O
/// counters for the modeled times.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// Intra-node triangulation workers used for this query.
    pub workers: usize,
    /// Active metacells this node retrieved.
    pub active_metacells: u64,
    /// Unit cells scanned inside those metacells.
    pub cells_visited: u64,
    /// Cells that produced triangles.
    pub active_cells: u64,
    /// Triangles generated.
    pub triangles: u64,
    /// Bytes of metacell records read.
    pub bytes_read: u64,
    /// Measured wall-clock time retrieving active metacells from disk.
    pub amc_retrieval: Duration,
    /// Measured wall-clock time generating triangles.
    pub triangulation: Duration,
    /// Measured wall-clock time rasterizing locally (zero if not rendering).
    pub rendering: Duration,
    /// I/O counters for this node's reads during the query.
    pub io: IoSnapshot,
}

impl NodeReport {
    /// Measured total for this node.
    pub fn wall_total(&self) -> Duration {
        self.amc_retrieval + self.triangulation + self.rendering
    }
}

/// A whole-cluster query report.
#[derive(Clone, Debug, Default)]
pub struct QueryReport {
    /// The queried isovalue (real-valued).
    pub isovalue: f32,
    /// Per-node rows.
    pub nodes: Vec<NodeReport>,
    /// Bytes the sort-last shuffle moved (0 until rendering runs).
    pub composite_wire_bytes: u64,
    /// Measured wall-clock of the composite step.
    pub composite_wall: Duration,
    /// Measured end-to-end wall clock (threads + composite).
    pub total_wall: Duration,
}

impl QueryReport {
    /// Total active metacells across nodes.
    pub fn total_active_metacells(&self) -> u64 {
        self.nodes.iter().map(|n| n.active_metacells).sum()
    }

    /// Total triangles across nodes.
    pub fn total_triangles(&self) -> u64 {
        self.nodes.iter().map(|n| n.triangles).sum()
    }

    /// Total bytes read across nodes.
    pub fn total_bytes_read(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_read).sum()
    }

    /// The slowest node's measured time — the parallel completion time.
    pub fn bottleneck_wall(&self) -> Duration {
        self.nodes
            .iter()
            .map(NodeReport::wall_total)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Measured triangle throughput (millions of triangles per second of
    /// end-to-end wall time) — the paper's headline "3.5 ∼ 4.0 M tri/s".
    pub fn mtris_per_sec(&self) -> f64 {
        let secs = self.total_wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_triangles() as f64 / 1e6 / secs
    }

    /// Max/mean imbalance of active metacells (Table 6's balance statistic).
    pub fn metacell_imbalance(&self) -> f64 {
        imbalance(self.nodes.iter().map(|n| n.active_metacells))
    }

    /// Max/mean imbalance of triangles (Table 7's balance statistic).
    pub fn triangle_imbalance(&self) -> f64 {
        imbalance(self.nodes.iter().map(|n| n.triangles))
    }
}

fn imbalance(counts: impl Iterator<Item = u64>) -> f64 {
    let v: Vec<u64> = counts.collect();
    if v.is_empty() {
        return 1.0;
    }
    let total: u64 = v.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / v.len() as f64;
    *v.iter().max().unwrap() as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: usize, amc: u64, tris: u64, ms: (u64, u64, u64)) -> NodeReport {
        NodeReport {
            node: n,
            active_metacells: amc,
            triangles: tris,
            amc_retrieval: Duration::from_millis(ms.0),
            triangulation: Duration::from_millis(ms.1),
            rendering: Duration::from_millis(ms.2),
            ..Default::default()
        }
    }

    #[test]
    fn aggregation() {
        let r = QueryReport {
            isovalue: 70.0,
            nodes: vec![
                node(0, 100, 5000, (10, 20, 5)),
                node(1, 110, 5500, (11, 22, 5)),
            ],
            composite_wire_bytes: 1024,
            composite_wall: Duration::from_millis(2),
            total_wall: Duration::from_millis(40),
        };
        assert_eq!(r.total_active_metacells(), 210);
        assert_eq!(r.total_triangles(), 10_500);
        assert_eq!(r.bottleneck_wall(), Duration::from_millis(38));
        let rate = r.mtris_per_sec();
        assert!((rate - 10_500.0 / 1e6 / 0.040).abs() < 1e-6);
    }

    #[test]
    fn imbalance_stats() {
        let r = QueryReport {
            isovalue: 0.0,
            nodes: vec![node(0, 10, 100, (0, 0, 0)), node(1, 30, 100, (0, 0, 0))],
            ..Default::default()
        };
        assert!((r.metacell_imbalance() - 1.5).abs() < 1e-9);
        assert!((r.triangle_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = QueryReport::default();
        assert_eq!(r.total_triangles(), 0);
        assert_eq!(r.mtris_per_sec(), 0.0);
        assert_eq!(r.bottleneck_wall(), Duration::ZERO);
        assert_eq!(r.metacell_imbalance(), 1.0);
    }
}
