//! Per-phase timing reports.

use oociso_exio::IoSnapshot;
use oociso_itree::plan::ExecStats;
use oociso_march::WeldStats;
use std::time::Duration;

/// One node's measurements for one isosurface query — the row format of the
/// paper's Tables 2–5 (AMC retrieval, triangulation, rendering) plus I/O
/// counters for the modeled times and, for the streaming pipeline, overlap
/// metrics showing how much of phase (i) hid behind phase (ii).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// Intra-node triangulation workers actually spawned for this query
    /// (0 when the plan was empty and the pool never started).
    pub workers: usize,
    /// Active metacells this node retrieved.
    pub active_metacells: u64,
    /// Unit cells scanned inside those metacells.
    pub cells_visited: u64,
    /// Cells that produced triangles.
    pub active_cells: u64,
    /// Triangles generated.
    pub triangles: u64,
    /// Bytes of metacell records read.
    pub bytes_read: u64,
    /// Measured wall-clock of AMC retrieval (the paper's metric (i)): time
    /// until the plan finished executing. Under the streaming pipeline this
    /// includes time blocked on queue backpressure and runs concurrently with
    /// triangulation.
    pub amc_retrieval: Duration,
    /// Measured wall-clock of triangle generation (metric (ii)): under the
    /// streaming pipeline, from pipeline start until the last worker mesh is
    /// merged (overlapping `amc_retrieval`); under the batch path, the
    /// phase-serial triangulation time.
    pub triangulation: Duration,
    /// Measured wall-clock of the whole extraction pipeline (retrieval and
    /// triangulation, overlapped). For the batch path this is the serial sum
    /// of the two phases.
    pub extraction_wall: Duration,
    /// Producer time actually retrieving/decoding records — `amc_retrieval`
    /// minus time blocked pushing into a full queue.
    pub retrieval_busy: Duration,
    /// Summed worker time spent triangulating (CPU-busy, so with `w` workers
    /// this can exceed `extraction_wall` by up to `w×`).
    pub triangulation_busy: Duration,
    /// High-water mark of records queued between the phases. The batch path
    /// reports the whole staged active set (its true high-water mark).
    pub peak_queue_records: u64,
    /// High-water mark of record bytes queued between the phases — the
    /// pipeline's actual staging memory, vs. the whole active set for the
    /// batch path.
    pub peak_queue_bytes: u64,
    /// High-water mark of queued *work* (planner cell estimates) between the
    /// phases — what the weighted queue admission actually bounds. The batch
    /// path reports the whole staged active set's cell count.
    pub peak_queue_work: u64,
    /// Plan-execution counters (bulk/prefix actions, rejected records).
    pub exec: ExecStats,
    /// Metacell-seam weld counters for this node's mesh (zeroed when the
    /// query ran with [`crate::ExtractOptions::weld`] off).
    pub weld: WeldStats,
    /// Measured wall-clock of the node's seam weld (zero when welding off).
    pub weld_wall: Duration,
    /// Measured wall-clock time rasterizing locally (zero if not rendering).
    pub rendering: Duration,
    /// I/O counters for this node's reads during the query.
    pub io: IoSnapshot,
}

impl NodeReport {
    /// Measured total for this node. Uses the overlapped pipeline wall when
    /// one was recorded; otherwise (hand-built reports, older callers) falls
    /// back to the phase-serial sum.
    pub fn wall_total(&self) -> Duration {
        if self.extraction_wall > Duration::ZERO {
            self.extraction_wall + self.weld_wall + self.rendering
        } else {
            self.amc_retrieval + self.triangulation + self.weld_wall + self.rendering
        }
    }

    /// Per-worker triangulation time (`triangulation_busy / workers`): the
    /// wall-clock phase (ii) would take alone, so the overlap metrics below
    /// measure *pipelining* and don't credit plain multi-worker parallelism
    /// (which `triangulation_busy`, a CPU-time sum, would inflate `workers`×).
    fn triangulation_phase(&self) -> Duration {
        self.triangulation_busy / self.workers.max(1) as u32
    }

    /// Wall-clock the pipeline saved versus running its phases back-to-back:
    /// `(retrieval_busy + triangulation_busy/workers) − extraction_wall`
    /// (≈ zero when nothing overlapped, e.g. the batch path).
    pub fn overlap_saved(&self) -> Duration {
        (self.retrieval_busy + self.triangulation_phase()).saturating_sub(self.extraction_wall)
    }

    /// Fraction of the shorter phase hidden by the pipeline: 0 = fully
    /// serial, 1 = completely overlapped (clamped).
    pub fn overlap_fraction(&self) -> f64 {
        let shorter = self
            .retrieval_busy
            .min(self.triangulation_phase())
            .as_secs_f64();
        if shorter <= 0.0 {
            return 0.0;
        }
        (self.overlap_saved().as_secs_f64() / shorter).min(1.0)
    }
}

/// One LOD pyramid level's row in a [`QueryReport`] — the decimation
/// analogue of a `NodeReport`: what the level cost and what survived.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LodReport {
    /// Requested vertex fraction of the full-resolution mesh (level 0 = 1).
    pub target_ratio: f64,
    /// Surviving vertices.
    pub vertices: u64,
    /// Surviving triangles.
    pub triangles: u64,
    /// Largest quadric error of any collapse applied building this level
    /// (squared world-space distance; 0 for level 0).
    pub max_error: f64,
    /// Accumulated world-space error gauge versus full resolution
    /// (`LodChain::world_error`).
    pub world_error: f64,
    /// Edge collapses applied for this level.
    pub collapses: u64,
}

/// A whole-cluster query report.
#[derive(Clone, Debug, Default)]
pub struct QueryReport {
    /// The queried isovalue (real-valued).
    pub isovalue: f32,
    /// Per-node rows.
    pub nodes: Vec<NodeReport>,
    /// Weld counters of the cross-node merge stage
    /// ([`oociso_march::MeshWelder`] run by `ClusterExtraction::into_merged`;
    /// zeroed until that merge happens, or when welding is off / the cluster
    /// has a single node).
    pub merge_weld: WeldStats,
    /// Measured wall-clock of the cross-node merge stage (the merge weld
    /// for MC; the seam stitch + smoothing for SurfaceNets).
    pub merge_weld_wall: Duration,
    /// Triangles appended by the SurfaceNets seam stitch during
    /// `ClusterExtraction::into_merged` (0 for MC, and until that merge
    /// runs). Counted into [`QueryReport::total_triangles`].
    pub stitch_triangles: u64,
    /// Per-level rows of the LOD pyramid (`ClusterExtraction::into_lod_chain`;
    /// empty until that runs, or when no LODs were requested).
    pub lod_levels: Vec<LodReport>,
    /// Measured wall-clock building the LOD pyramid.
    pub lod_wall: Duration,
    /// Bytes the sort-last shuffle moved (0 until rendering runs).
    pub composite_wire_bytes: u64,
    /// Measured wall-clock of the composite step.
    pub composite_wall: Duration,
    /// Measured end-to-end wall clock (threads + composite, plus the
    /// cross-node merge weld once `into_merged` has run).
    pub total_wall: Duration,
}

impl QueryReport {
    /// Total active metacells across nodes.
    pub fn total_active_metacells(&self) -> u64 {
        self.nodes.iter().map(|n| n.active_metacells).sum()
    }

    /// Total triangles across nodes (plus the SurfaceNets seam stitch, once
    /// the merge stage has run).
    pub fn total_triangles(&self) -> u64 {
        self.nodes.iter().map(|n| n.triangles).sum::<u64>() + self.stitch_triangles
    }

    /// Total bytes read across nodes.
    pub fn total_bytes_read(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_read).sum()
    }

    /// The slowest node's measured time — the parallel completion time.
    pub fn bottleneck_wall(&self) -> Duration {
        self.nodes
            .iter()
            .map(NodeReport::wall_total)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Measured triangle throughput (millions of triangles per second of
    /// end-to-end wall time) — the paper's headline "3.5 ∼ 4.0 M tri/s".
    pub fn mtris_per_sec(&self) -> f64 {
        let secs = self.total_wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_triangles() as f64 / 1e6 / secs
    }

    /// Max/mean imbalance of active metacells (Table 6's balance statistic).
    pub fn metacell_imbalance(&self) -> f64 {
        imbalance(self.nodes.iter().map(|n| n.active_metacells))
    }

    /// Max/mean imbalance of triangles (Table 7's balance statistic).
    pub fn triangle_imbalance(&self) -> f64 {
        imbalance(self.nodes.iter().map(|n| n.triangles))
    }

    /// Largest per-node staging high-water mark: the most record bytes any
    /// node held queued between retrieval and triangulation. For the
    /// streaming pipeline this is the actual peak extraction memory per node
    /// (bounded by the queue), not the whole active set.
    pub fn max_peak_queue_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.peak_queue_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Wall-clock the pipeline saved versus phase-serial execution, summed
    /// across nodes (see [`NodeReport::overlap_saved`]).
    pub fn total_overlap_saved(&self) -> Duration {
        self.nodes.iter().map(NodeReport::overlap_saved).sum()
    }

    /// Plan-execution counters summed across nodes (total bulk/prefix
    /// actions and rejected records of the whole query).
    pub fn total_exec(&self) -> ExecStats {
        self.nodes
            .iter()
            .fold(ExecStats::default(), |acc, n| acc.merged(&n.exec))
    }

    /// Weld counters summed over every stage of the query: each node's
    /// metacell-seam weld plus the cross-node merge weld. The sums of
    /// `vertices_merged()`/`degenerate_dropped` are exact totals; the
    /// boundary gauges are stage sums, not a single mesh's count.
    pub fn total_weld(&self) -> WeldStats {
        self.nodes
            .iter()
            .fold(self.merge_weld, |acc, n| acc.merged(&n.weld))
    }

    /// Wall-clock spent welding, across nodes and the merge stage.
    pub fn total_weld_wall(&self) -> Duration {
        self.merge_weld_wall + self.nodes.iter().map(|n| n.weld_wall).sum::<Duration>()
    }
}

fn imbalance(counts: impl Iterator<Item = u64>) -> f64 {
    let v: Vec<u64> = counts.collect();
    if v.is_empty() {
        return 1.0;
    }
    let total: u64 = v.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / v.len() as f64;
    *v.iter().max().unwrap() as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: usize, amc: u64, tris: u64, ms: (u64, u64, u64)) -> NodeReport {
        NodeReport {
            node: n,
            active_metacells: amc,
            triangles: tris,
            amc_retrieval: Duration::from_millis(ms.0),
            triangulation: Duration::from_millis(ms.1),
            rendering: Duration::from_millis(ms.2),
            ..Default::default()
        }
    }

    #[test]
    fn aggregation() {
        let r = QueryReport {
            isovalue: 70.0,
            nodes: vec![
                node(0, 100, 5000, (10, 20, 5)),
                node(1, 110, 5500, (11, 22, 5)),
            ],
            composite_wire_bytes: 1024,
            composite_wall: Duration::from_millis(2),
            total_wall: Duration::from_millis(40),
            ..Default::default()
        };
        assert_eq!(r.total_active_metacells(), 210);
        assert_eq!(r.total_triangles(), 10_500);
        assert_eq!(r.bottleneck_wall(), Duration::from_millis(38));
        let rate = r.mtris_per_sec();
        assert!((rate - 10_500.0 / 1e6 / 0.040).abs() < 1e-6);
    }

    #[test]
    fn imbalance_stats() {
        let r = QueryReport {
            isovalue: 0.0,
            nodes: vec![node(0, 10, 100, (0, 0, 0)), node(1, 30, 100, (0, 0, 0))],
            ..Default::default()
        };
        assert!((r.metacell_imbalance() - 1.5).abs() < 1e-9);
        assert!((r.triangle_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = QueryReport::default();
        assert_eq!(r.total_triangles(), 0);
        assert_eq!(r.mtris_per_sec(), 0.0);
        assert_eq!(r.bottleneck_wall(), Duration::ZERO);
        assert_eq!(r.metacell_imbalance(), 1.0);
        assert_eq!(r.max_peak_queue_bytes(), 0);
        assert_eq!(r.total_overlap_saved(), Duration::ZERO);
    }

    #[test]
    fn overlap_metrics() {
        // 100 ms retrieval + 60 ms triangulation overlapped into 110 ms wall:
        // 50 ms hidden = 5/6 of the shorter phase.
        let n = NodeReport {
            amc_retrieval: Duration::from_millis(100),
            triangulation: Duration::from_millis(110),
            extraction_wall: Duration::from_millis(110),
            retrieval_busy: Duration::from_millis(100),
            triangulation_busy: Duration::from_millis(60),
            rendering: Duration::from_millis(7),
            ..Default::default()
        };
        assert_eq!(n.wall_total(), Duration::from_millis(117));
        assert_eq!(n.overlap_saved(), Duration::from_millis(50));
        assert!((n.overlap_fraction() - 50.0 / 60.0).abs() < 1e-9);

        // fully serial: nothing hidden
        let serial = NodeReport {
            extraction_wall: Duration::from_millis(160),
            retrieval_busy: Duration::from_millis(100),
            triangulation_busy: Duration::from_millis(60),
            ..Default::default()
        };
        assert_eq!(serial.overlap_saved(), Duration::ZERO);
        assert_eq!(serial.overlap_fraction(), 0.0);

        // batch path, 4 workers: triangulation_busy is a CPU-time sum (~4×
        // the phase wall); plain parallelism must not read as overlap
        let batch = NodeReport {
            workers: 4,
            extraction_wall: Duration::from_millis(160), // 100 retrieval + 60 tri wall
            retrieval_busy: Duration::from_millis(100),
            triangulation_busy: Duration::from_millis(220), // 4 workers ≈ 55 ms each
            ..Default::default()
        };
        assert_eq!(batch.overlap_saved(), Duration::ZERO);
        assert_eq!(batch.overlap_fraction(), 0.0);

        // no extraction_wall recorded → wall_total falls back to phase sums
        let legacy = node(0, 1, 1, (10, 20, 5));
        assert_eq!(legacy.wall_total(), Duration::from_millis(35));
    }
}
