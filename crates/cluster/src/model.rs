//! Simulated-time composition.
//!
//! Our hardware differs from the paper's 2006 cluster in every component, so
//! wall-clock numbers are not comparable — and with fewer physical cores than
//! simulated nodes, measured parallel wall time cannot show 8-way speedups at
//! all. The simulated-time model reconstructs what the paper measures from
//! quantities that *are* faithful at any scale: per-node I/O counters (priced
//! at the paper's 50 MB/s disk), per-node triangle counts (priced at a
//! triangulation rate), and the composite traffic (priced at 10 Gbps
//! InfiniBand). Because the parallel algorithm's scaling is entirely
//! work-distribution-driven — the paper's own analysis — these modeled times
//! reproduce the shape of Tables 2–5 and Figures 5–6.

use crate::timing::{NodeReport, QueryReport};
use oociso_exio::IoCostModel;
use oociso_render::InterconnectModel;
use std::time::Duration;

/// Rates used to convert counters into simulated seconds.
#[derive(Clone, Copy, Debug)]
pub struct SimulatedTimeModel {
    /// Disk model for AMC retrieval (default: the paper's 50 MB/s disk).
    pub disk: IoCostModel,
    /// Triangles generated per second per node. The paper's single-node runs
    /// sustain ≈ 4 M triangles/s end-to-end with triangulation dominating;
    /// we default to 5 M/s for the triangulation phase alone.
    pub tris_per_sec: f64,
    /// Local GPU rendering rate (triangles/s). The paper: "once the triangles
    /// are generated, they are rendered on the GPU very quickly".
    pub render_tris_per_sec: f64,
    /// Interconnect for the composite shuffle.
    pub net: InterconnectModel,
}

impl SimulatedTimeModel {
    /// The paper's hardware constants.
    pub fn paper() -> Self {
        SimulatedTimeModel {
            disk: IoCostModel::paper_disk(),
            tris_per_sec: 5.0e6,
            render_tris_per_sec: 60.0e6,
            net: InterconnectModel::infiniband_10g(),
        }
    }

    /// Simulated AMC retrieval time of one node.
    pub fn node_io_time(&self, n: &NodeReport) -> Duration {
        self.disk.modeled_time(&n.io)
    }

    /// Simulated triangulation time of one node.
    pub fn node_triangulation_time(&self, n: &NodeReport) -> Duration {
        Duration::from_secs_f64(n.triangles as f64 / self.tris_per_sec)
    }

    /// Simulated rendering time of one node.
    pub fn node_render_time(&self, n: &NodeReport) -> Duration {
        Duration::from_secs_f64(n.triangles as f64 / self.render_tris_per_sec)
    }

    /// Simulated total for one node.
    pub fn node_time(&self, n: &NodeReport) -> Duration {
        self.node_io_time(n) + self.node_triangulation_time(n) + self.node_render_time(n)
    }

    /// Simulated composite time for `nodes` buffers shuffled to `tiles`
    /// display servers at `display` resolution.
    pub fn composite_time(&self, nodes: usize, tiles: usize, display: (usize, usize)) -> Duration {
        let region_bytes = (display.0 * display.1 / tiles.max(1)) as u64
            * oociso_render::Framebuffer::BYTES_PER_PIXEL;
        self.net.composite_time(nodes, tiles, region_bytes)
    }

    /// Simulated end-to-end query time: slowest node + composite. This is the
    /// quantity Figures 5 (overall time) and 6 (speedup) sweep.
    pub fn query_time(
        &self,
        report: &QueryReport,
        tiles: usize,
        display: (usize, usize),
    ) -> Duration {
        let bottleneck = report
            .nodes
            .iter()
            .map(|n| self.node_time(n))
            .max()
            .unwrap_or(Duration::ZERO);
        bottleneck + self.composite_time(report.nodes.len(), tiles, display)
    }

    /// Simulated serial time: the sum of all per-node work on one node (the
    /// denominator of the speedup curves; §5.1 argues total work is
    /// conserved under striping).
    pub fn serial_time(&self, report: &QueryReport) -> Duration {
        report
            .nodes
            .iter()
            .map(|n| self.node_time(n))
            .sum::<Duration>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_exio::IoSnapshot;

    fn node(triangles: u64, bytes: u64, seeks: u64) -> NodeReport {
        NodeReport {
            triangles,
            io: IoSnapshot {
                read_calls: seeks,
                seeks,
                forward_skips: 0,
                skip_bytes: 0,
                sequential_reads: 0,
                bytes_read: bytes,
                blocks_read: bytes / 8192,
            },
            ..Default::default()
        }
    }

    #[test]
    fn io_time_at_fifty_mbps() {
        let m = SimulatedTimeModel::paper();
        let n = node(0, 50_000_000, 1);
        let t = m.node_io_time(&n).as_secs_f64();
        assert!((t - 1.008).abs() < 0.01, "50 MB ≈ 1 s, got {t}");
    }

    #[test]
    fn triangulation_dominates_like_the_paper() {
        // paper §7.1: "the triangle generation stage is the bottleneck"
        let m = SimulatedTimeModel::paper();
        // a node with 10 M triangles from ~90 MB of metacells (the paper's
        // per-node ballpark at isovalue 130 on 4 nodes)
        let n = node(10_000_000, 90_000_000, 10);
        assert!(m.node_triangulation_time(&n) > m.node_io_time(&n));
        assert!(m.node_render_time(&n) < m.node_io_time(&n));
    }

    #[test]
    fn query_time_tracks_bottleneck() {
        let m = SimulatedTimeModel::paper();
        let r = QueryReport {
            nodes: vec![node(1_000_000, 1 << 20, 1), node(4_000_000, 1 << 22, 1)],
            ..Default::default()
        };
        let q = m.query_time(&r, 4, (1024, 1024));
        let slow = m.node_time(&r.nodes[1]);
        assert!(q >= slow);
        assert!(q < slow + Duration::from_millis(200));
    }

    #[test]
    fn serial_time_is_sum() {
        let m = SimulatedTimeModel::paper();
        let a = node(1_000_000, 1 << 20, 1);
        let b = node(2_000_000, 1 << 21, 2);
        let r = QueryReport {
            nodes: vec![a, b],
            ..Default::default()
        };
        let sum = m.node_time(&a) + m.node_time(&b);
        assert_eq!(m.serial_time(&r), sum);
    }

    #[test]
    fn balanced_nodes_scale_linearly() {
        // p identical nodes at paper-scale workloads (hundreds of millions of
        // triangles) → speedup ≈ p; the composite's fixed cost is what keeps
        // the paper's own 8-node speedups at 6.91–7.83 rather than 8.
        let m = SimulatedTimeModel::paper();
        let one = node(256_000_000, 2048 << 20, 4);
        for p in [2usize, 4, 8] {
            let per = node(256_000_000 / p as u64, (2048 << 20) / p as u64, 4);
            let r = QueryReport {
                nodes: vec![per; p],
                ..Default::default()
            };
            let serial = m.node_time(&one);
            let parallel = m.query_time(&r, 4, (1024, 1024));
            let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
            assert!(
                speedup > 0.85 * p as f64 && speedup <= p as f64 + 0.2,
                "p={p}: speedup {speedup}"
            );
        }
    }
}
