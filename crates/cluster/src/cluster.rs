//! The cluster: build, open, and query.

use crate::meta::ClusterMeta;
use crate::timing::{NodeReport, QueryReport};
use oociso_exio::{DiskFarm, RecordStore};
use oociso_itree::plan::execute_plan;
use oociso_itree::{persist, CompactIntervalTree, MetacellRecordFormat};
use oociso_march::mc::{marching_cubes_indexed, McStats, SlabScratch};
use oociso_march::{IndexedMesh, TriangleSoup, Vec3};
use oociso_metacell::{
    scan_volume, MetacellInterval, MetacellLayout, MetacellRecord, PreprocessStats,
};
use oociso_render::{rasterize_mesh, Camera, Framebuffer, TileLayout};
use oociso_volume::{ScalarValue, Volume};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Options for building a cluster dataset.
#[derive(Clone, Copy, Debug)]
pub struct ClusterBuildOptions {
    /// Metacell vertices per axis (paper: 9).
    pub metacell_k: usize,
    /// Open the brick stores memory-mapped.
    pub mmap: bool,
}

impl Default for ClusterBuildOptions {
    fn default() -> Self {
        ClusterBuildOptions {
            metacell_k: 9,
            mmap: false,
        }
    }
}

/// The result of one parallel extraction: per-node indexed meshes plus the
/// per-phase report.
#[derive(Clone, Debug)]
pub struct ClusterExtraction {
    /// One indexed mesh per node (local geometry, already in global
    /// coordinates; vertices deduplicated within each node's metacells).
    pub meshes: Vec<IndexedMesh>,
    /// Per-node and aggregate measurements.
    pub report: QueryReport,
}

impl ClusterExtraction {
    /// Merge all node meshes into one soup (for export or soup-consuming
    /// callers). Triangles are materialized straight into one pre-reserved
    /// soup — no per-node intermediate soups, no cloning.
    pub fn merged_soup(&self) -> TriangleSoup {
        let total: usize = self.meshes.iter().map(IndexedMesh::len).sum();
        let mut out = TriangleSoup::with_capacity(total);
        for m in &self.meshes {
            m.append_to_soup(&mut out);
        }
        out
    }

    /// Consume the extraction into the merged mesh plus the report (indices
    /// are rebased; vertices are not re-welded across node seams). The split
    /// return lets callers keep the report without cloning it.
    pub fn into_merged(self) -> (IndexedMesh, QueryReport) {
        let ClusterExtraction { meshes, report } = self;
        let mut it = meshes.into_iter();
        let mut out = it.next().unwrap_or_default();
        for m in it {
            out.merge(m);
        }
        (out, report)
    }
}

/// A `p`-node cluster over a preprocessed dataset directory.
///
/// Each node owns `node<i>.bricks` (its stripe of every brick) and
/// `node<i>.index` (its local compact interval tree). Queries run one OS
/// thread per node, sharing nothing but the read-only index and its own
/// store — the paper's shared-nothing execution, minus MPI.
pub struct Cluster<S: ScalarValue> {
    dir: PathBuf,
    nodes: usize,
    layout: MetacellLayout,
    format: MetacellRecordFormat<S>,
    trees: Vec<CompactIntervalTree>,
    stores: Vec<RecordStore>,
}

fn index_path(dir: &Path, node: usize) -> PathBuf {
    dir.join(format!("node{node:03}.index"))
}

impl<S: ScalarValue> Cluster<S> {
    /// Preprocess `vol` into `dir` for `nodes` nodes: scan metacells, cull
    /// constants, stripe bricks round-robin across per-node stores, build and
    /// persist per-node compact interval trees.
    pub fn build(
        vol: &Volume<S>,
        dir: &Path,
        nodes: usize,
        opts: &ClusterBuildOptions,
    ) -> io::Result<(Self, PreprocessStats)> {
        assert!(nodes > 0);
        let layout = MetacellLayout::new(vol.dims(), opts.metacell_k);
        let (built, stats) = scan_volume(vol, &layout);
        let intervals: Vec<MetacellInterval> = built.iter().map(|b| b.interval).collect();

        let farm = DiskFarm::new(dir, nodes);
        let mut writers = farm.create_writers()?;
        let trees = CompactIntervalTree::build_striped(&intervals, nodes, &mut |stripe, iv| {
            let idx = built
                .binary_search_by_key(&iv.id, |b| b.interval.id)
                .expect("interval id from this build");
            writers[stripe].append(&built[idx].record.encode())
        })?;
        for w in writers {
            w.finish()?;
        }
        for (i, tree) in trees.iter().enumerate() {
            persist::save(tree, &index_path(dir, i))?;
        }
        ClusterMeta {
            dims: vol.dims(),
            metacell_k: opts.metacell_k,
            scalar: S::NAME.to_string(),
            nodes,
        }
        .save(dir)?;

        let stores = farm.open_stores(opts.mmap)?;
        Ok((
            Cluster {
                dir: dir.to_path_buf(),
                nodes,
                layout,
                format: MetacellRecordFormat::new(layout),
                trees,
                stores,
            },
            stats,
        ))
    }

    /// Preprocess a raw volume **file** into `dir` without ever holding the
    /// volume in memory — the true out-of-core preprocessing path.
    ///
    /// Two streaming passes over the file (the paper likens preprocessing
    /// cost to an external sort):
    ///
    /// 1. stream z-slabs, computing every metacell's `(vmin, vmax)` interval
    ///    (constant metacells culled); build the striped trees with a
    ///    *dry-run* sink that only assigns each record its destination
    ///    `(stripe, offset)` — no payload exists yet;
    /// 2. stream z-slabs again, encoding each kept record and writing it at
    ///    its pre-assigned offset via positioned writes.
    ///
    /// Peak memory is one slab (`nx × ny × k` samples) plus the interval list
    /// and index — independent of `nz`.
    pub fn build_from_file(
        volume_path: &Path,
        dir: &Path,
        nodes: usize,
        opts: &ClusterBuildOptions,
    ) -> io::Result<(Self, PreprocessStats)> {
        use std::os::unix::fs::FileExt;
        assert!(nodes > 0);
        let mut reader = oociso_volume::io::RawVolumeReader::<S>::open(volume_path)?;
        let layout = MetacellLayout::new(reader.dims(), opts.metacell_k);

        // Pass 1: intervals only (records dropped immediately).
        let mut intervals: Vec<MetacellInterval> = Vec::new();
        let stats = oociso_metacell::scan_reader(&mut reader, opts.metacell_k, |built| {
            intervals.push(built.interval);
        })?;

        // Dry-run striped build: assign offsets, build trees.
        let mut cursors = vec![0u64; nodes];
        // placement[kept_index] = (stripe, offset); intervals are sorted by id
        let mut placement: Vec<(usize, u64)> = vec![(0, 0); intervals.len()];
        let trees = CompactIntervalTree::build_striped(&intervals, nodes, &mut |stripe, iv| {
            let len = layout.record_len(iv.id, S::BYTES) as u64;
            let offset = cursors[stripe];
            cursors[stripe] += len;
            let idx = intervals
                .binary_search_by_key(&iv.id, |v| v.id)
                .expect("id from this scan");
            placement[idx] = (stripe, offset);
            Ok(oociso_exio::Span { offset, len })
        })?;

        // Create store files sized up front.
        std::fs::create_dir_all(dir)?;
        let farm = DiskFarm::new(dir, nodes);
        let files: Vec<std::fs::File> = (0..nodes)
            .map(|i| {
                let f = std::fs::File::create(farm.store_path(i))?;
                f.set_len(cursors[i])?;
                Ok(f)
            })
            .collect::<io::Result<_>>()?;

        // Pass 2: stream again, writing each record at its placement.
        let mut reader = oociso_volume::io::RawVolumeReader::<S>::open(volume_path)?;
        let mut kept_cursor = 0usize;
        oociso_metacell::scan_reader(&mut reader, opts.metacell_k, |built| {
            debug_assert_eq!(built.interval.id, intervals[kept_cursor].id);
            let (stripe, offset) = placement[kept_cursor];
            kept_cursor += 1;
            let bytes = built.record.encode();
            files[stripe]
                .write_all_at(&bytes, offset)
                .expect("record write");
        })?;
        drop(files);

        for (i, tree) in trees.iter().enumerate() {
            persist::save(tree, &index_path(dir, i))?;
        }
        ClusterMeta {
            dims: layout.volume_dims(),
            metacell_k: opts.metacell_k,
            scalar: S::NAME.to_string(),
            nodes,
        }
        .save(dir)?;

        let stores = farm.open_stores(opts.mmap)?;
        Ok((
            Cluster {
                dir: dir.to_path_buf(),
                nodes,
                layout,
                format: MetacellRecordFormat::new(layout),
                trees,
                stores,
            },
            stats,
        ))
    }

    /// Open a previously built cluster directory.
    pub fn open(dir: &Path, mmap: bool) -> io::Result<Self> {
        let meta = ClusterMeta::load(dir)?;
        if meta.scalar != S::NAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "scalar mismatch: dataset is {}, requested {}",
                    meta.scalar,
                    S::NAME
                ),
            ));
        }
        let layout = MetacellLayout::new(meta.dims, meta.metacell_k);
        let farm = DiskFarm::new(dir, meta.nodes);
        let stores = farm.open_stores(mmap)?;
        let trees = (0..meta.nodes)
            .map(|i| persist::load(&index_path(dir, i)))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Cluster {
            dir: dir.to_path_buf(),
            nodes: meta.nodes,
            layout,
            format: MetacellRecordFormat::new(layout),
            trees,
            stores,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The metacell layout of the dataset.
    pub fn layout(&self) -> &MetacellLayout {
        &self.layout
    }

    /// Per-node index trees (read-only).
    pub fn trees(&self) -> &[CompactIntervalTree] {
        &self.trees
    }

    /// Dataset directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Intra-node worker count: divide the machine's cores across the
    /// simulated nodes (at least one worker each). `OOCISO_THREADS`
    /// overrides the core count — handy for scaling experiments.
    fn default_workers(&self) -> usize {
        let cores = std::env::var("OOCISO_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        (cores / self.nodes).max(1)
    }

    /// Run the parallel extraction for `iso`: every node plans against its
    /// local index, streams its active metacells, and triangulates — one
    /// thread per node, no cross-node communication. Within each node the
    /// planned metacell batch is split across a scoped worker pool (cores
    /// divided evenly among nodes), so a 1-node "cluster" still saturates
    /// the machine.
    pub fn extract(&self, iso: f32) -> io::Result<ClusterExtraction> {
        self.extract_with_workers(iso, self.default_workers())
    }

    /// [`Cluster::extract`] with an explicit per-node worker count.
    pub fn extract_with_workers(&self, iso: f32, workers: usize) -> io::Result<ClusterExtraction> {
        let workers = workers.max(1);
        let key = S::query_key(iso);
        let t_total = Instant::now();
        let results: Vec<io::Result<(IndexedMesh, NodeReport)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.nodes)
                .map(|i| {
                    let tree = &self.trees[i];
                    let store = &self.stores[i];
                    scope.spawn(move || self.node_extract(i, tree, store, key, iso, workers))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        });
        let mut meshes = Vec::with_capacity(self.nodes);
        let mut nodes = Vec::with_capacity(self.nodes);
        for r in results {
            let (mesh, report) = r?;
            meshes.push(mesh);
            nodes.push(report);
        }
        let report = QueryReport {
            isovalue: iso,
            nodes,
            composite_wire_bytes: 0,
            composite_wall: Duration::ZERO,
            total_wall: t_total.elapsed(),
        };
        Ok(ClusterExtraction { meshes, report })
    }

    /// One node's extraction work (runs on the node's thread).
    fn node_extract(
        &self,
        node: usize,
        tree: &CompactIntervalTree,
        store: &RecordStore,
        key: u32,
        iso: f32,
        workers: usize,
    ) -> io::Result<(IndexedMesh, NodeReport)> {
        // Phase 1: AMC retrieval — stream all active metacell records into
        // memory (the paper's metric (i)).
        let io_before = store.device().io_snapshot();
        let t0 = Instant::now();
        let plan = tree.plan(key);
        let mut records: Vec<Vec<u8>> = Vec::new();
        execute_plan(&plan, store, &self.format, |_id, bytes| {
            records.push(bytes.to_vec())
        })?;
        let amc_retrieval = t0.elapsed();
        let io = store.device().io_snapshot().since(&io_before);
        let bytes_read: u64 = records.iter().map(|r| r.len() as u64).sum();

        // Phase 2: triangulation (metric (ii)) — the batch is split into
        // contiguous per-worker chunks; each worker reuses one decode buffer
        // and one slab scratch across all its records and appends into its
        // own mesh. Worker meshes merge in order at the end, so the output
        // is deterministic regardless of scheduling.
        let t1 = Instant::now();
        let workers = workers.clamp(1, records.len().max(1));
        // chunks(per) can yield fewer chunks than requested (e.g. 10 records
        // across 8 workers → 5 chunks of 2); report the count actually spawned
        let per = records.len().max(1).div_ceil(workers);
        let workers = records.len().max(1).div_ceil(per);
        let (mesh, mc) = if workers <= 1 {
            self.triangulate_batch(&records, iso)
        } else {
            let parts: Vec<(IndexedMesh, McStats)> = std::thread::scope(|scope| {
                let handles: Vec<_> = records
                    .chunks(per)
                    .map(|chunk| scope.spawn(move || self.triangulate_batch(chunk, iso)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("extraction worker panicked"))
                    .collect()
            });
            let mut mc = McStats::default();
            let total: usize = parts.iter().map(|(m, _)| m.len()).sum();
            let mut mesh = IndexedMesh::with_capacity(total);
            for (part, stats) in parts {
                mc.merge(&stats);
                mesh.merge(part);
            }
            (mesh, mc)
        };
        let triangulation = t1.elapsed();

        Ok((
            mesh,
            NodeReport {
                node,
                workers,
                active_metacells: records.len() as u64,
                cells_visited: mc.cells_visited,
                active_cells: mc.active_cells,
                triangles: mc.triangles,
                bytes_read,
                amc_retrieval,
                triangulation,
                rendering: Duration::ZERO,
                io,
            },
        ))
    }

    /// Triangulate one contiguous batch of encoded records into one mesh,
    /// reusing a single decode buffer and slab scratch across the batch.
    fn triangulate_batch(&self, records: &[Vec<u8>], iso: f32) -> (IndexedMesh, McStats) {
        let mut mesh = IndexedMesh::new();
        let mut mc = McStats::default();
        let mut scratch = SlabScratch::new();
        let mut scalars: Vec<S> = Vec::new();
        for rec in records {
            let (id, _vmin, used) =
                MetacellRecord::<S>::decode_scalars_into(rec, &self.layout, &mut scalars);
            debug_assert_eq!(used, rec.len());
            let ((x0, y0, z0), _) = self.layout.vertex_box(id);
            let local = Volume::from_vec(self.layout.cell_dims(id), std::mem::take(&mut scalars));
            let stats = marching_cubes_indexed(
                &local,
                iso,
                Vec3::new(x0 as f32, y0 as f32, z0 as f32),
                Vec3::new(1.0, 1.0, 1.0),
                &mut mesh,
                &mut scratch,
            );
            scalars = local.into_vec();
            mc.merge(&stats);
        }
        (mesh, mc)
    }

    /// Extract, render locally on every node, and sort-last composite onto
    /// the tiled display (§5.1's full pipeline, metric (iii) included).
    pub fn extract_and_render(
        &self,
        iso: f32,
        camera: &Camera,
        tiles: &TileLayout,
        base_color: [f32; 3],
    ) -> io::Result<(Framebuffer, ClusterExtraction)> {
        let t_total = Instant::now();
        let mut extraction = self.extract(iso)?;

        // Per-node local rendering (one thread per node, own framebuffer).
        let frames: Vec<(Framebuffer, Duration)> = std::thread::scope(|scope| {
            let handles: Vec<_> = extraction
                .meshes
                .iter()
                .map(|mesh| {
                    scope.spawn(move || {
                        let mut fb = Framebuffer::new(tiles.width, tiles.height);
                        let t = Instant::now();
                        rasterize_mesh(mesh, camera, base_color, &mut fb);
                        (fb, t.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("render thread panicked"))
                .collect()
        });
        let mut buffers = Vec::with_capacity(frames.len());
        for (i, (fb, dt)) in frames.into_iter().enumerate() {
            extraction.report.nodes[i].rendering = dt;
            buffers.push(fb);
        }

        // Sort-last composite: the only communication of the whole query.
        let t_comp = Instant::now();
        let (wall, wire_bytes) = tiles.composite(&buffers);
        extraction.report.composite_wall = t_comp.elapsed();
        extraction.report.composite_wire_bytes = wire_bytes;
        extraction.report.total_wall = t_total.elapsed();
        Ok((wall, extraction))
    }

    /// Per-node `(active_metacells, triangles)` distribution for an isovalue —
    /// the rows of Tables 6 and 7.
    pub fn distribution(&self, iso: f32) -> io::Result<Vec<(u64, u64)>> {
        let e = self.extract(iso)?;
        Ok(e.report
            .nodes
            .iter()
            .map(|n| (n.active_metacells, n.triangles))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_march::mc::marching_cubes;
    use oociso_render::rasterize_soup;
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::Dims3;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_cluster_{}_{}", std::process::id(), name));
        p
    }

    fn test_volume() -> Volume<u8> {
        SphereField::centered(0.32, 128.0).sample(Dims3::new(33, 33, 33))
    }

    #[test]
    fn parallel_matches_serial_triangles() {
        let vol = test_volume();
        // ground truth: whole-volume marching cubes
        let mut truth = TriangleSoup::new();
        marching_cubes(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut truth,
        );

        let d1 = tmpdir("p1");
        let (c1, stats1) = Cluster::build(&vol, &d1, 1, &ClusterBuildOptions::default()).unwrap();
        let e1 = c1.extract(128.0).unwrap();
        assert_eq!(e1.report.total_triangles() as usize, truth.len());
        assert!(stats1.kept_metacells > 0);

        let d4 = tmpdir("p4");
        let (c4, stats4) = Cluster::build(&vol, &d4, 4, &ClusterBuildOptions::default()).unwrap();
        let e4 = c4.extract(128.0).unwrap();
        assert_eq!(e4.report.total_triangles() as usize, truth.len());
        assert_eq!(stats1.kept_metacells, stats4.kept_metacells);
        assert_eq!(
            e1.report.total_active_metacells(),
            e4.report.total_active_metacells()
        );
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d4).ok();
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let vol = test_volume();
        let dir = tmpdir("workers");
        let (c, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
        let base = c.extract_with_workers(128.0, 1).unwrap();
        assert_eq!(base.report.nodes[0].workers, 1);
        let base_soup = base.merged_soup();
        assert!(!base_soup.is_empty());
        for workers in [2, 3, 8] {
            let e = c.extract_with_workers(128.0, workers).unwrap();
            // reported workers = chunks actually spawned, never the raw request
            let amc = e.report.nodes[0].active_metacells as usize;
            let expected = amc.div_ceil(amc.div_ceil(workers));
            assert_eq!(e.report.nodes[0].workers, expected, "workers={workers}");
            let soup = e.merged_soup();
            assert_eq!(soup.len(), base_soup.len(), "workers={workers}");
            // chunks preserve record order and merge in worker order, so the
            // triangle stream is bit-identical, not just multiset-equal
            for (a, b) in soup.triangles().iter().zip(base_soup.triangles()) {
                assert_eq!(a, b, "workers={workers}");
            }
            assert_eq!(
                e.report.total_triangles(),
                base.report.total_triangles(),
                "workers={workers}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn extraction_matches_reference_kernel_exactly() {
        // cluster path (slab kernel over decoded metacell records) vs the
        // monolithic reference kernel: identical canonical triangle multiset
        let vol = test_volume();
        let mut truth = TriangleSoup::new();
        marching_cubes(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut truth,
        );
        let dir = tmpdir("exact");
        let (c, _) = Cluster::build(&vol, &dir, 3, &ClusterBuildOptions::default()).unwrap();
        let e = c.extract(128.0).unwrap();
        let canon = oociso_march::canonical_triangles;
        assert_eq!(canon(&truth), canon(&e.merged_soup()));
        // per-node meshes really are indexed: shared crossings deduplicated
        for m in &e.meshes {
            assert!(m.num_vertices() < 3 * m.len(), "no dedup in node mesh");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_core_build_matches_in_memory_build() {
        let vol = test_volume();
        let vol_path = tmpdir("ooc.vol");
        oociso_volume::io::write_volume(&vol_path, &vol).unwrap();

        let d_mem = tmpdir("ooc_mem");
        let d_file = tmpdir("ooc_file");
        let opts = ClusterBuildOptions::default();
        let (c_mem, s_mem) = Cluster::build(&vol, &d_mem, 3, &opts).unwrap();
        let (c_file, s_file) =
            Cluster::<u8>::build_from_file(&vol_path, &d_file, 3, &opts).unwrap();
        assert_eq!(s_mem, s_file);
        // store files byte-identical
        for i in 0..3 {
            let a = std::fs::read(d_mem.join(format!("node{i:03}.bricks"))).unwrap();
            let b = std::fs::read(d_file.join(format!("node{i:03}.bricks"))).unwrap();
            assert_eq!(a, b, "node {i} store differs");
        }
        // queries agree
        for iso in [80.0, 128.0, 180.0] {
            let em = c_mem.extract(iso).unwrap();
            let ef = c_file.extract(iso).unwrap();
            assert_eq!(em.report.total_triangles(), ef.report.total_triangles());
            assert_eq!(
                em.report.total_active_metacells(),
                ef.report.total_active_metacells()
            );
        }
        std::fs::remove_file(&vol_path).ok();
        std::fs::remove_dir_all(&d_mem).ok();
        std::fs::remove_dir_all(&d_file).ok();
    }

    #[test]
    fn reopen_preserves_queries() {
        let vol = test_volume();
        let dir = tmpdir("reopen");
        let (c, _) = Cluster::build(&vol, &dir, 2, &ClusterBuildOptions::default()).unwrap();
        let before = c.extract(100.0).unwrap();
        drop(c);
        let c2 = Cluster::<u8>::open(&dir, true).unwrap();
        let after = c2.extract(100.0).unwrap();
        assert_eq!(
            before.report.total_triangles(),
            after.report.total_triangles()
        );
        assert_eq!(
            before.report.total_active_metacells(),
            after.report.total_active_metacells()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_scalar_rejected_on_open() {
        let vol = test_volume();
        let dir = tmpdir("scalar");
        let (_c, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
        assert!(Cluster::<u16>::open(&dir, false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn balance_across_nodes() {
        let vol = test_volume();
        let dir = tmpdir("balance");
        let (c, _) = Cluster::build(&vol, &dir, 4, &ClusterBuildOptions::default()).unwrap();
        for iso in [60.0, 100.0, 128.0, 160.0, 200.0] {
            let dist = c.distribution(iso).unwrap();
            let total: u64 = dist.iter().map(|d| d.0).sum();
            if total < 16 {
                continue;
            }
            let max = dist.iter().map(|d| d.0).max().unwrap();
            let mean = total as f64 / dist.len() as f64;
            assert!(
                max as f64 / mean < 1.75,
                "iso {iso}: metacell distribution {dist:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_phases_populated() {
        let vol = test_volume();
        let dir = tmpdir("phases");
        let (c, _) = Cluster::build(&vol, &dir, 2, &ClusterBuildOptions::default()).unwrap();
        let e = c.extract(128.0).unwrap();
        for n in &e.report.nodes {
            assert!(n.bytes_read > 0);
            assert!(n.io.read_calls > 0);
            assert!(n.cells_visited >= n.active_cells);
            assert!(n.triangles > 0);
        }
        assert!(e.report.total_wall > Duration::ZERO);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_composites_all_nodes() {
        let vol = test_volume();
        let dir = tmpdir("render");
        let (c, _) = Cluster::build(&vol, &dir, 4, &ClusterBuildOptions::default()).unwrap();
        let e0 = c.extract(128.0).unwrap();
        let soup = e0.merged_soup();
        let bounds = soup.bounds();
        let camera = Camera::orbiting(&bounds, 0.6, 0.5, 2.5);
        let tiles = TileLayout::paper_wall(128, 128);
        let (wall, e) = c
            .extract_and_render(128.0, &camera, &tiles, [0.9, 0.85, 0.6])
            .unwrap();
        assert!(wall.covered_pixels() > 100, "sphere should cover pixels");
        assert!(e.report.composite_wire_bytes > 0);
        for n in &e.report.nodes {
            assert!(n.rendering > Duration::ZERO);
        }

        // the composited wall must equal rendering the merged soup directly
        let mut reference = Framebuffer::new(128, 128);
        rasterize_soup(&soup, &camera, [0.9, 0.85, 0.6], &mut reference);
        let mut diff = 0usize;
        for y in 0..128 {
            for x in 0..128 {
                if reference.color_at(x, y) != wall.color_at(x, y) {
                    diff += 1;
                }
            }
        }
        // identical except possibly where equal depths tie-break differently
        assert!(diff < 40, "{diff} differing pixels");
        std::fs::remove_dir_all(&dir).ok();
    }
}
