//! The cluster: build, open, and query.

use crate::meta::ClusterMeta;
use crate::timing::{NodeReport, QueryReport};
use oociso_exio::{BoundedQueue, DiskFarm, RecordStore, WriteAt};
use oociso_itree::plan::{execute_plan, QueryPlan};
use oociso_itree::{persist, CompactIntervalTree, MetacellRecordFormat};
use oociso_march::mc::McStats;
use oociso_march::weld::WeldStats;
use oociso_march::{
    smooth_surface_nets, stitch_seams, Backend, BackendScratch, BlockDomain, BlockOutput,
    ExtractionBackend, IndexedMesh, LodChain, MeshWelder, SeamQuad, TriangleSoup, Vec3,
    SN_SMOOTH_PASSES,
};
use oociso_metacell::{
    scan_volume, MetacellInterval, MetacellLayout, MetacellRecord, PreprocessStats,
};
use oociso_obs::{Span, Trace};
use oociso_render::{rasterize_mesh, Camera, Framebuffer, LocalTransport, TileLayout, Transport};
use oociso_volume::{ScalarValue, Volume};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Options for building a cluster dataset.
#[derive(Clone, Copy, Debug)]
pub struct ClusterBuildOptions {
    /// Metacell vertices per axis (paper: 9).
    pub metacell_k: usize,
    /// Open the brick stores memory-mapped.
    pub mmap: bool,
}

impl Default for ClusterBuildOptions {
    fn default() -> Self {
        ClusterBuildOptions {
            metacell_k: 9,
            mmap: false,
        }
    }
}

/// Default bound (in records) of the retrieval→triangulation queue. Sized so
/// staging memory stays tens of records (~50 KB of u8 metacells) while giving
/// the worker pool enough lookahead to ride out bursty bulk reads.
pub const DEFAULT_QUEUE_RECORDS: usize = 64;

/// How active-metacell records flow from retrieval (phase (i)) into
/// triangulation (phase (ii)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtractMode {
    /// Stream each record into the worker pool through a bounded queue as the
    /// plan executes: disk and cores overlap, peak staging memory is the
    /// queue bound, and per-record granularity load-balances dense metacells
    /// across workers. Output is bit-identical to [`ExtractMode::Batch`] via
    /// sequence-ordered merging.
    Streaming {
        /// Queue bound in records (`usize::MAX` ≈ unbounded).
        queue_records: usize,
    },
    /// Retrieve the whole record batch into memory, then split it into
    /// contiguous per-worker chunks — the phase-serial reference path, kept
    /// for equivalence tests and overlap benchmarks.
    Batch,
}

impl Default for ExtractMode {
    fn default() -> Self {
        ExtractMode::Streaming {
            queue_records: DEFAULT_QUEUE_RECORDS,
        }
    }
}

/// LOD pyramid request: vertex-count targets of the extra levels, each a
/// fraction of the full-resolution vertex count, strictly decreasing (the
/// serving default is 25 % and 6 %). Empty = no decimation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LodSpec {
    /// Per-level vertex ratios, e.g. `[0.25, 0.06]` for a 100 %/25 %/6 %
    /// pyramid.
    pub ratios: Vec<f64>,
}

impl LodSpec {
    /// No extra levels (full resolution only).
    pub fn none() -> LodSpec {
        LodSpec::default()
    }

    /// The serving default: 100 % / 25 % / 6 %.
    pub fn pyramid() -> LodSpec {
        LodSpec {
            ratios: vec![0.25, 0.06],
        }
    }

    /// Total level count including the implicit full-resolution level 0.
    pub fn levels(&self) -> usize {
        1 + self.ratios.len()
    }
}

/// Options for one extraction query.
#[derive(Clone, Debug)]
pub struct ExtractOptions {
    /// Per-node worker count (`None` → cores ÷ nodes, see
    /// [`Cluster::extract`]).
    pub workers: Option<usize>,
    /// Record flow between the pipeline phases.
    pub mode: ExtractMode,
    /// Weld vertices across metacell seams in each node mesh, and across
    /// node seams in [`ClusterExtraction::into_merged`] (default) — the
    /// merged surface is watertight wherever the isosurface is closed.
    /// `false` keeps the legacy blind concatenation (duplicated seam
    /// vertices, boundary edges along every metacell face), which the
    /// topology test suites use as the open-seam reference.
    pub weld: bool,
    /// LOD pyramid to build from the merged welded mesh — consumed by
    /// [`ClusterExtraction::into_lod_chain`]; empty (the default) skips
    /// decimation entirely.
    pub lods: LodSpec,
    /// Extraction kernel. [`Backend::Mc`] (default) triangulates per cell
    /// and welds seams; [`Backend::SurfaceNets`] emits one vertex per active
    /// cell with deferred seam quads stitched during
    /// [`ClusterExtraction::into_merged`] — vertices are globally unique by
    /// construction, so [`ExtractOptions::weld`] does not apply to it.
    pub backend: Backend,
    /// Request trace the extraction records its phase spans into
    /// (`extract` → per-node `node` → `pipeline` with `execute_plan`,
    /// `queue_wait`, `triangulate`, `weld`; the merge/LOD stages add
    /// `merge_weld`/`stitch`, `lod`, and per-level `decimate` spans). The
    /// report's `Duration` fields are set from these spans' measured values,
    /// so trace and report always agree exactly. Defaults to a detached
    /// trace, which bounds the cost for untraced callers at the trace's
    /// event cap; served queries pass the wire-identified request trace.
    pub trace: Trace,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            workers: None,
            mode: ExtractMode::default(),
            weld: true,
            lods: LodSpec::none(),
            backend: Backend::Mc,
            trace: Trace::detached(),
        }
    }
}

/// The result of one parallel extraction: per-node indexed meshes plus the
/// per-phase report.
#[derive(Clone, Debug)]
pub struct ClusterExtraction {
    /// One indexed mesh per node (local geometry, already in global
    /// coordinates). With welding (the default) each node mesh is fully
    /// welded — one vertex per distinct quantized position across all of the
    /// node's metacells; otherwise vertices are deduplicated only within
    /// each metacell.
    pub meshes: Vec<IndexedMesh>,
    /// Per-node vertex→cell tables for the SurfaceNets backend (parallel to
    /// each node mesh's vertices; empty for MC). The cell key is the global
    /// identity of the vertex — what the seam stitch joins on.
    pub cells: Vec<Vec<u64>>,
    /// Per-node deferred seam quads for the SurfaceNets backend (empty for
    /// MC) — resolved by [`ClusterExtraction::into_merged`].
    pub seams: Vec<Vec<SeamQuad>>,
    /// Per-node and aggregate measurements.
    pub report: QueryReport,
    /// Whether [`ClusterExtraction::into_merged`] welds node seams (set from
    /// [`ExtractOptions::weld`]; MC only).
    pub weld: bool,
    /// LOD pyramid [`ClusterExtraction::into_lod_chain`] will build from the
    /// merged mesh (set from [`ExtractOptions::lods`]).
    pub lods: LodSpec,
    /// The kernel that produced this extraction.
    pub backend: Backend,
    /// The request trace the extraction recorded into (from
    /// [`ExtractOptions::trace`]); the merge and LOD stages append their
    /// spans here too.
    pub trace: Trace,
}

impl ClusterExtraction {
    /// Merge all node meshes into one soup (for export or soup-consuming
    /// callers). Triangles are materialized straight into one pre-reserved
    /// soup — no per-node intermediate soups, no cloning.
    ///
    /// For the SurfaceNets backend the soup holds only the node-local
    /// geometry — the deferred seam quads between nodes (and the smoothing
    /// passes) only materialize in [`ClusterExtraction::into_merged`].
    pub fn merged_soup(&self) -> TriangleSoup {
        let total: usize = self.meshes.iter().map(IndexedMesh::len).sum();
        let mut out = TriangleSoup::with_capacity(total);
        for m in &self.meshes {
            m.append_to_soup(&mut out);
        }
        out
    }

    /// Consume the extraction into the merged mesh plus the report. With
    /// welding enabled (the default), node meshes join through one
    /// deterministic [`MeshWelder`] so vertices fuse across node seams and
    /// the full-database mesh is watertight wherever the surface is closed;
    /// the merge stage's [`WeldStats`] land in [`QueryReport::merge_weld`].
    /// Without welding, indices are rebased and seam vertices stay
    /// duplicated. The split return lets callers keep the report without
    /// cloning it.
    pub fn into_merged(self) -> (IndexedMesh, QueryReport) {
        let ClusterExtraction {
            meshes,
            cells,
            seams,
            mut report,
            weld,
            lods: _,
            backend,
            trace,
        } = self;
        if backend == Backend::SurfaceNets {
            // SurfaceNets merge: concatenate node meshes (vertices are
            // globally unique by cell ownership — nothing to weld), resolve
            // the deferred seam quads against the concatenated vertex→cell
            // table, then run the bounded smoothing passes over the stitched
            // surface so smoothing reaches across node seams.
            let sp = trace.span("stitch");
            let total: usize = meshes.iter().map(IndexedMesh::len).sum();
            let mut out = IndexedMesh::with_capacity(total);
            let mut all_cells: Vec<u64> = Vec::with_capacity(cells.iter().map(Vec::len).sum());
            for (m, c) in meshes.into_iter().zip(cells) {
                out.merge(m);
                all_cells.extend(c);
            }
            let mut all_seams: Vec<SeamQuad> = seams.into_iter().flatten().collect();
            report.stitch_triangles = stitch_seams(&mut out, &all_cells, &mut all_seams);
            smooth_surface_nets(
                &mut out,
                &all_cells,
                Vec3::ZERO,
                Vec3::new(1.0, 1.0, 1.0),
                SN_SMOOTH_PASSES,
            );
            report.merge_weld_wall = sp.finish();
            report.total_wall += report.merge_weld_wall;
            return (out, report);
        }
        if !weld || meshes.len() <= 1 {
            // single welded node: already seam-free, skip the re-join pass
            let mut it = meshes.into_iter();
            let mut out = it.next().unwrap_or_default();
            for m in it {
                out.merge(m);
            }
            return (out, report);
        }
        let sp = trace.span("merge_weld");
        let total: usize = meshes.iter().map(IndexedMesh::len).sum();
        let mut out = IndexedMesh::with_capacity(total);
        let mut welder = MeshWelder::new();
        for m in &meshes {
            out.merge_welded(m, &mut welder);
        }
        report.merge_weld = welder.finish(&out);
        report.merge_weld_wall = sp.finish();
        // the merge weld is part of producing this result: fold it into the
        // end-to-end wall so downstream ratios (e.g. weld cost vs total)
        // compare like with like
        report.total_wall += report.merge_weld_wall;
        (out, report)
    }

    /// Consume the extraction into the full LOD pyramid plus the report:
    /// merge (welding node seams as [`ClusterExtraction::into_merged`]
    /// does), then build one decimated level per ratio of the requested
    /// [`LodSpec`] — **post-weld**, so every level simplifies the watertight
    /// global mesh rather than per-node fragments. Per-level
    /// [`oociso_march::DecimateStats`] land in [`QueryReport::lod_levels`]
    /// and the decimation wall in [`QueryReport::lod_wall`]. An empty spec
    /// yields a 1-level chain (full resolution only).
    pub fn into_lod_chain(self) -> (LodChain, QueryReport) {
        let ratios = self.lods.ratios.clone();
        let trace = self.trace.clone();
        let (mesh, mut report) = self.into_merged();
        let sp = trace.span("lod");
        let chain = LodChain::build_observed(mesh, &ratios, |level, wall, stats| {
            sp.annotate(
                "decimate",
                wall,
                &[("level", level as u64), ("collapses", stats.collapses)],
            );
        });
        report.lod_wall = sp.finish();
        report.lod_levels = chain
            .levels()
            .iter()
            .map(|l| crate::timing::LodReport {
                target_ratio: l.target_ratio,
                vertices: l.mesh.num_vertices() as u64,
                triangles: l.mesh.len() as u64,
                max_error: l.stats.max_error,
                world_error: l.cumulative_error.sqrt(),
                collapses: l.stats.collapses,
            })
            .collect();
        report.total_wall += report.lod_wall;
        (chain, report)
    }
}

/// A `p`-node cluster over a preprocessed dataset directory.
///
/// Each node owns `node<i>.bricks` (its stripe of every brick) and
/// `node<i>.index` (its local compact interval tree). Queries run one OS
/// thread per node, sharing nothing but the read-only index and its own
/// store — the paper's shared-nothing execution, minus MPI.
pub struct Cluster<S: ScalarValue> {
    dir: PathBuf,
    nodes: usize,
    layout: MetacellLayout,
    format: MetacellRecordFormat<S>,
    trees: Vec<CompactIntervalTree>,
    stores: Vec<RecordStore>,
}

fn index_path(dir: &Path, node: usize) -> PathBuf {
    dir.join(format!("node{node:03}.index"))
}

/// Pass 2 of the out-of-core build: stream the volume file again, encoding
/// each kept record and writing it at its pre-assigned `(stripe, offset)`.
/// Generic over the write sinks so failing devices can exercise the error
/// path; any write failure aborts the scan and surfaces as `Err`.
fn write_records_pass<S: ScalarValue>(
    volume_path: &Path,
    k: usize,
    intervals: &[MetacellInterval],
    placement: &[(usize, u64)],
    sinks: &[&dyn WriteAt],
) -> io::Result<()> {
    let mut reader = oociso_volume::io::RawVolumeReader::<S>::open(volume_path)?;
    let mut kept_cursor = 0usize;
    oociso_metacell::scan_reader(&mut reader, k, |built| {
        let Some(&(stripe, offset)) = placement.get(kept_cursor) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "volume grew between preprocessing passes",
            ));
        };
        debug_assert_eq!(built.interval.id, intervals[kept_cursor].id);
        kept_cursor += 1;
        sinks[stripe].write_all_at(&built.record.encode(), offset)
    })?;
    if kept_cursor != placement.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "volume shrank between preprocessing passes",
        ));
    }
    Ok(())
}

impl<S: ScalarValue> Cluster<S> {
    /// Preprocess `vol` into `dir` for `nodes` nodes: scan metacells, cull
    /// constants, stripe bricks round-robin across per-node stores, build and
    /// persist per-node compact interval trees.
    pub fn build(
        vol: &Volume<S>,
        dir: &Path,
        nodes: usize,
        opts: &ClusterBuildOptions,
    ) -> io::Result<(Self, PreprocessStats)> {
        assert!(nodes > 0);
        let layout = MetacellLayout::new(vol.dims(), opts.metacell_k);
        let (built, stats) = scan_volume(vol, &layout);
        let intervals: Vec<MetacellInterval> = built.iter().map(|b| b.interval).collect();

        let farm = DiskFarm::new(dir, nodes);
        let mut writers = farm.create_writers()?;
        let trees = CompactIntervalTree::build_striped(&intervals, nodes, &mut |stripe, iv| {
            let idx = built
                .binary_search_by_key(&iv.id, |b| b.interval.id)
                .expect("interval id from this build");
            writers[stripe].append(&built[idx].record.encode())
        })?;
        for w in writers {
            w.finish()?;
        }
        for (i, tree) in trees.iter().enumerate() {
            persist::save(tree, &index_path(dir, i))?;
        }
        ClusterMeta {
            dims: vol.dims(),
            metacell_k: opts.metacell_k,
            scalar: S::NAME.to_string(),
            nodes,
        }
        .save(dir)?;

        let stores = farm.open_stores(opts.mmap)?;
        Ok((
            Cluster {
                dir: dir.to_path_buf(),
                nodes,
                layout,
                format: MetacellRecordFormat::new(layout),
                trees,
                stores,
            },
            stats,
        ))
    }

    /// Preprocess a raw volume **file** into `dir` without ever holding the
    /// volume in memory — the true out-of-core preprocessing path.
    ///
    /// Two streaming passes over the file (the paper likens preprocessing
    /// cost to an external sort):
    ///
    /// 1. stream z-slabs, computing every metacell's `(vmin, vmax)` interval
    ///    (constant metacells culled); build the striped trees with a
    ///    *dry-run* sink that only assigns each record its destination
    ///    `(stripe, offset)` — no payload exists yet;
    /// 2. stream z-slabs again, encoding each kept record and writing it at
    ///    its pre-assigned offset via positioned writes.
    ///
    /// Peak memory is one slab (`nx × ny × k` samples) plus the interval list
    /// and index — independent of `nz`.
    pub fn build_from_file(
        volume_path: &Path,
        dir: &Path,
        nodes: usize,
        opts: &ClusterBuildOptions,
    ) -> io::Result<(Self, PreprocessStats)> {
        assert!(nodes > 0);
        let mut reader = oociso_volume::io::RawVolumeReader::<S>::open(volume_path)?;
        let layout = MetacellLayout::new(reader.dims(), opts.metacell_k);

        // Pass 1: intervals only (records dropped immediately).
        let mut intervals: Vec<MetacellInterval> = Vec::new();
        let stats = oociso_metacell::scan_reader(&mut reader, opts.metacell_k, |built| {
            intervals.push(built.interval);
            Ok(())
        })?;

        // Dry-run striped build: assign offsets, build trees.
        let mut cursors = vec![0u64; nodes];
        // placement[kept_index] = (stripe, offset); intervals are sorted by id
        let mut placement: Vec<(usize, u64)> = vec![(0, 0); intervals.len()];
        let trees = CompactIntervalTree::build_striped(&intervals, nodes, &mut |stripe, iv| {
            let len = layout.record_len(iv.id, S::BYTES) as u64;
            let offset = cursors[stripe];
            cursors[stripe] += len;
            let idx = intervals
                .binary_search_by_key(&iv.id, |v| v.id)
                .expect("id from this scan");
            placement[idx] = (stripe, offset);
            Ok(oociso_exio::Span { offset, len })
        })?;

        // Create store files sized up front.
        std::fs::create_dir_all(dir)?;
        let farm = DiskFarm::new(dir, nodes);
        let files: Vec<std::fs::File> = (0..nodes)
            .map(|i| {
                let f = std::fs::File::create(farm.store_path(i))?;
                f.set_len(cursors[i])?;
                Ok(f)
            })
            .collect::<io::Result<_>>()?;

        // Pass 2: stream again, writing each record at its placement through
        // the portable positioned-write abstraction. Write failures (full
        // disk, revoked handle) surface as `Err` from the scan.
        let sinks: Vec<&dyn WriteAt> = files.iter().map(|f| f as &dyn WriteAt).collect();
        write_records_pass::<S>(volume_path, opts.metacell_k, &intervals, &placement, &sinks)?;
        drop(files);

        for (i, tree) in trees.iter().enumerate() {
            persist::save(tree, &index_path(dir, i))?;
        }
        ClusterMeta {
            dims: layout.volume_dims(),
            metacell_k: opts.metacell_k,
            scalar: S::NAME.to_string(),
            nodes,
        }
        .save(dir)?;

        let stores = farm.open_stores(opts.mmap)?;
        Ok((
            Cluster {
                dir: dir.to_path_buf(),
                nodes,
                layout,
                format: MetacellRecordFormat::new(layout),
                trees,
                stores,
            },
            stats,
        ))
    }

    /// Open a previously built cluster directory.
    pub fn open(dir: &Path, mmap: bool) -> io::Result<Self> {
        let meta = ClusterMeta::load(dir)?;
        if meta.scalar != S::NAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "scalar mismatch: dataset is {}, requested {}",
                    meta.scalar,
                    S::NAME
                ),
            ));
        }
        let layout = MetacellLayout::new(meta.dims, meta.metacell_k);
        let farm = DiskFarm::new(dir, meta.nodes);
        let stores = farm.open_stores(mmap)?;
        let trees = (0..meta.nodes)
            .map(|i| persist::load(&index_path(dir, i)))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Cluster {
            dir: dir.to_path_buf(),
            nodes: meta.nodes,
            layout,
            format: MetacellRecordFormat::new(layout),
            trees,
            stores,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The metacell layout of the dataset.
    pub fn layout(&self) -> &MetacellLayout {
        &self.layout
    }

    /// Per-node index trees (read-only).
    pub fn trees(&self) -> &[CompactIntervalTree] {
        &self.trees
    }

    /// Dataset directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Intra-node worker count: divide the machine's cores across the
    /// simulated nodes (at least one worker each). `OOCISO_THREADS`
    /// overrides the core count — handy for scaling experiments.
    fn default_workers(&self) -> usize {
        let cores = std::env::var("OOCISO_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        (cores / self.nodes).max(1)
    }

    /// Run the parallel extraction for `iso`: every node plans against its
    /// local index, streams its active metacells, and triangulates — one
    /// thread per node, no cross-node communication. Within each node the
    /// paper's phases (i) and (ii) pipeline: the node thread executes the
    /// plan and streams each record through a bounded queue into a scoped
    /// worker pool (cores divided evenly among nodes), so disk and cores
    /// overlap and a 1-node "cluster" still saturates the machine.
    pub fn extract(&self, iso: f32) -> io::Result<ClusterExtraction> {
        self.extract_with_options(iso, &ExtractOptions::default())
    }

    /// [`Cluster::extract`] with an explicit per-node worker count.
    pub fn extract_with_workers(&self, iso: f32, workers: usize) -> io::Result<ClusterExtraction> {
        self.extract_with_options(
            iso,
            &ExtractOptions {
                workers: Some(workers),
                ..Default::default()
            },
        )
    }

    /// [`Cluster::extract`] with full control over workers and record flow.
    pub fn extract_with_options(
        &self,
        iso: f32,
        opts: &ExtractOptions,
    ) -> io::Result<ClusterExtraction> {
        let workers = opts
            .workers
            .unwrap_or_else(|| self.default_workers())
            .max(1);
        let mode = opts.mode;
        let weld = opts.weld;
        let backend = opts.backend;
        let mut sp_extract = opts.trace.span("extract");
        sp_extract.field("iso_millis", (iso as f64 * 1e3) as u64);
        sp_extract.field("nodes", self.nodes as u64);
        let results: Vec<io::Result<(BlockOutput, NodeReport)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.nodes)
                .map(|i| {
                    let tree = &self.trees[i];
                    let store = &self.stores[i];
                    let mut nspan = sp_extract.child("node");
                    nspan.field("node", i as u64);
                    scope.spawn(move || {
                        self.node_extract(i, tree, store, iso, workers, mode, weld, backend, nspan)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        });
        let mut meshes = Vec::with_capacity(self.nodes);
        let mut cells = Vec::with_capacity(self.nodes);
        let mut seams = Vec::with_capacity(self.nodes);
        let mut nodes = Vec::with_capacity(self.nodes);
        for r in results {
            let (out, report) = r?;
            meshes.push(out.mesh);
            cells.push(out.cells);
            seams.push(out.seams);
            nodes.push(report);
        }
        let report = QueryReport {
            isovalue: iso,
            nodes,
            composite_wire_bytes: 0,
            composite_wall: Duration::ZERO,
            total_wall: sp_extract.finish(),
            ..Default::default()
        };
        Ok(ClusterExtraction {
            meshes,
            cells,
            seams,
            report,
            weld,
            lods: opts.lods.clone(),
            backend,
            trace: opts.trace.clone(),
        })
    }

    /// One node's extraction work (runs on the node's thread).
    #[allow(clippy::too_many_arguments)]
    fn node_extract(
        &self,
        node: usize,
        tree: &CompactIntervalTree,
        store: &RecordStore,
        iso: f32,
        workers: usize,
        mode: ExtractMode,
        weld: bool,
        backend: Backend,
        span: Span,
    ) -> io::Result<(BlockOutput, NodeReport)> {
        let mut span = span;
        let io_before = store.device().io_snapshot();
        let t0 = Instant::now();
        let plan = tree.plan(S::query_key(iso));
        if plan.actions.is_empty() {
            // Nothing can be active at this isovalue on this node (the tree
            // pruned every brick): skip the pipeline entirely — no worker
            // threads spawn, so the report states 0 workers.
            let elapsed = t0.elapsed();
            span.annotate("execute_plan", elapsed, &[]);
            return Ok((
                BlockOutput::default(),
                NodeReport {
                    node,
                    workers: 0,
                    amc_retrieval: elapsed,
                    extraction_wall: elapsed,
                    io: store.device().io_snapshot().since(&io_before),
                    ..Default::default()
                },
            ));
        }
        // Welding fuses duplicated MC seam vertices; SurfaceNets vertices
        // are globally unique by cell ownership, so there is nothing to weld.
        let weld = weld && backend == Backend::Mc;
        let (out, mut report) = match mode {
            ExtractMode::Streaming { queue_records } => self.node_extract_streaming(
                &plan,
                store,
                iso,
                workers,
                queue_records,
                weld,
                backend,
                &span,
            )?,
            ExtractMode::Batch => {
                self.node_extract_batch(&plan, store, iso, workers, weld, backend, &span)?
            }
        };
        report.node = node;
        report.io = store.device().io_snapshot().since(&io_before);
        span.field("active_metacells", report.active_metacells);
        span.field("triangles", report.triangles);
        Ok((out, report))
    }

    /// Fold the per-record (or per-chunk) parts into one node output, in
    /// sequence order. With welding, each part joins through one
    /// deterministic [`MeshWelder`] as it merges — by the welder's split
    /// invariance this is byte-identical to concatenating everything first
    /// and re-welding the whole node mesh, without that full-mesh pass. The
    /// merge loop's wall lands in `weld_wall` when welding ran.
    fn merge_parts(
        parts: Vec<(BlockOutput, McStats)>,
        weld: bool,
    ) -> (BlockOutput, McStats, WeldStats, Duration) {
        let t = Instant::now();
        let mut mc = McStats::default();
        let total: usize = parts.iter().map(|(o, _)| o.mesh.len()).sum();
        let mut out = BlockOutput::with_capacity(total);
        let mut welder = weld.then(MeshWelder::new);
        for (part, stats) in parts {
            mc.merge(&stats);
            match &mut welder {
                Some(w) => out.mesh.merge_welded(&part.mesh, w),
                None => out.mesh.merge(part.mesh),
            }
            out.cells.extend(part.cells);
            out.seams.extend(part.seams);
        }
        let (weld_stats, weld_wall) = match welder {
            Some(w) => (w.finish(&out.mesh), t.elapsed()),
            None => (WeldStats::default(), Duration::ZERO),
        };
        (out, mc, weld_stats, weld_wall)
    }

    /// The streaming pipeline: the calling (node) thread produces — executes
    /// the plan, pushing each active record into a bounded queue as it is
    /// decoded from disk — while `workers` consumers triangulate records as
    /// they arrive, each reusing one decode buffer and one slab scratch.
    /// Every record carries its emission sequence number and becomes its own
    /// mesh part; parts merge in sequence order, so the output is
    /// bit-identical to the batch path for any worker count or queue bound,
    /// and per-record granularity load-balances dense metacells for free.
    #[allow(clippy::too_many_arguments)]
    fn node_extract_streaming(
        &self,
        plan: &QueryPlan,
        store: &RecordStore,
        iso: f32,
        workers: usize,
        queue_records: usize,
        weld: bool,
        backend: Backend,
        span: &Span,
    ) -> io::Result<(BlockOutput, NodeReport)> {
        type Part = (u64, BlockOutput, McStats);
        /// Closes the queue when dropped. Every pipeline thread holds one, so
        /// an unwinding producer or worker releases everyone else — workers
        /// drain and exit, a blocked producer's push fails — instead of
        /// leaving them parked on a queue nobody will touch again (the scope
        /// would then never join and the panic would never propagate).
        /// Closing twice is harmless, so normal exits need no special case.
        struct CloseOnDrop<'a, T>(&'a BoundedQueue<T>);
        impl<T> Drop for CloseOnDrop<'_, T> {
            fn drop(&mut self) {
                self.0.close();
            }
        }

        // Admission is weighted by the planner's per-record cell count, so
        // the bound caps queued *work*: `queue_records` is interpreted as a
        // budget of that many full metacells' worth of cells — a few dense
        // (full) records fill it while many clamped edge slivers share it.
        let full_cells = {
            let span = (self.layout.k() - 1) as u64;
            span * span * span
        };
        let queue: BoundedQueue<(u64, Vec<u8>)> =
            BoundedQueue::weighted((queue_records as u64).saturating_mul(full_cells));
        let backend_impl = backend.instance::<S>();
        let sp_pipe = span.child("pipeline");
        let (exec, amc_retrieval, outs) = std::thread::scope(|scope| {
            let queue = &queue;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let _release_on_panic = CloseOnDrop(queue);
                        let mut parts: Vec<Part> = Vec::new();
                        let mut busy = Duration::ZERO;
                        let mut scratch = BackendScratch::new();
                        let mut scalars: Vec<S> = Vec::new();
                        while let Some((seq, rec)) = queue.pop() {
                            let t = Instant::now();
                            let mut out = BlockOutput::default();
                            let mc = self.triangulate_record(
                                backend_impl,
                                &rec,
                                iso,
                                &mut out,
                                &mut scratch,
                                &mut scalars,
                            );
                            busy += t.elapsed();
                            parts.push((seq, out, mc));
                        }
                        (parts, busy)
                    })
                })
                .collect();

            // Producer: phase (i) on this thread. Push can only fail once the
            // queue is closed — after a worker died; the records it would
            // have carried are moot, so the result is ignored.
            let sp_exec = sp_pipe.child("execute_plan");
            let exec = {
                let _close = CloseOnDrop(queue);
                let mut seq = 0u64;
                execute_plan(plan, store, &self.format, |id, bytes| {
                    let work = self.layout.num_cells(id) as u64;
                    let _ = queue.push((seq, bytes.to_vec()), bytes.len() as u64, work);
                    seq += 1;
                })
                // _close drops here: the queue closes on success, on a failed
                // plan execution, and on unwind alike, so consumers always
                // drain and exit instead of deadlocking the scope.
            };
            let amc_retrieval = sp_exec.finish();
            let outs: Vec<(Vec<Part>, Duration)> = handles
                .into_iter()
                .map(|h| h.join().expect("extraction worker panicked"))
                .collect();
            (exec, amc_retrieval, outs)
        });
        let exec = exec?;

        // Sequence-ordered merge restores the plan's emission order exactly.
        let mut triangulation_busy = Duration::ZERO;
        let mut parts: Vec<Part> = Vec::new();
        for (w, (p, busy)) in outs.into_iter().enumerate() {
            sp_pipe.annotate("triangulate", busy, &[("worker", w as u64)]);
            triangulation_busy += busy;
            parts.extend(p);
        }
        parts.sort_unstable_by_key(|&(seq, _, _)| seq);
        let parts: Vec<(BlockOutput, McStats)> =
            parts.into_iter().map(|(_, o, mc)| (o, mc)).collect();
        let (out, mc, weld_stats, weld_wall) = Self::merge_parts(parts, weld);
        let qstats = queue.stats();
        let waits = queue.waits();
        sp_pipe.annotate(
            "queue_wait",
            waits.push_wait,
            &[("pop_wait_us", waits.pop_wait.as_micros() as u64)],
        );
        if weld {
            sp_pipe.annotate("weld", weld_wall, &[]);
        }
        // weld_wall is reported separately (and summed back in wall_total),
        // so keep it out of the pipeline wall
        let extraction_wall = sp_pipe.finish().saturating_sub(weld_wall);

        Ok((
            out,
            NodeReport {
                node: 0, // filled by node_extract
                workers,
                active_metacells: exec.records_emitted,
                cells_visited: mc.cells_visited,
                active_cells: mc.active_cells,
                triangles: mc.triangles,
                bytes_read: qstats.pushed_bytes,
                amc_retrieval,
                triangulation: extraction_wall,
                extraction_wall,
                retrieval_busy: amc_retrieval.saturating_sub(waits.push_wait),
                triangulation_busy,
                peak_queue_records: qstats.peak_items,
                peak_queue_bytes: qstats.peak_bytes,
                peak_queue_work: qstats.peak_weight,
                exec,
                weld: weld_stats,
                weld_wall,
                rendering: Duration::ZERO,
                io: Default::default(), // filled by node_extract
            },
        ))
    }

    /// The phase-serial reference path: buffer the whole record batch, then
    /// split it into contiguous per-worker chunks that merge in order.
    #[allow(clippy::too_many_arguments)]
    fn node_extract_batch(
        &self,
        plan: &QueryPlan,
        store: &RecordStore,
        iso: f32,
        workers: usize,
        weld: bool,
        backend: Backend,
        span: &Span,
    ) -> io::Result<(BlockOutput, NodeReport)> {
        // Phase 1: AMC retrieval — the entire active set is staged in memory
        // (which is what `peak_queue_*` report for this mode).
        let sp_pipe = span.child("pipeline");
        let sp_exec = sp_pipe.child("execute_plan");
        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut staged_cells = 0u64;
        let exec = execute_plan(plan, store, &self.format, |id, bytes| {
            staged_cells += self.layout.num_cells(id) as u64;
            records.push(bytes.to_vec())
        })?;
        let amc_retrieval = sp_exec.finish();
        let bytes_read: u64 = records.iter().map(|r| r.len() as u64).sum();
        let backend_impl = backend.instance::<S>();

        // Phase 2: triangulation across contiguous chunks. chunks(per) can
        // yield fewer chunks than requested (e.g. 10 records across 8 workers
        // → 5 chunks of 2); report the count actually spawned.
        let t1 = Instant::now();
        let workers = workers.clamp(1, records.len().max(1));
        let per = records.len().max(1).div_ceil(workers);
        let workers = records.len().max(1).div_ceil(per);
        let (parts, triangulation_busy) = if workers <= 1 {
            let part = self.triangulate_batch(backend_impl, &records, iso);
            let busy = t1.elapsed();
            sp_pipe.annotate("triangulate", busy, &[("worker", 0)]);
            (vec![part], busy)
        } else {
            let parts: Vec<(BlockOutput, McStats, Duration)> = std::thread::scope(|scope| {
                let handles: Vec<_> = records
                    .chunks(per)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let t = Instant::now();
                            let (out, mc) = self.triangulate_batch(backend_impl, chunk, iso);
                            (out, mc, t.elapsed())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("extraction worker panicked"))
                    .collect()
            });
            let busy = parts.iter().map(|&(_, _, dt)| dt).sum();
            for (w, (_, _, dt)) in parts.iter().enumerate() {
                sp_pipe.annotate("triangulate", *dt, &[("worker", w as u64)]);
            }
            (parts.into_iter().map(|(o, mc, _)| (o, mc)).collect(), busy)
        };
        let (out, mc, weld_stats, weld_wall) = Self::merge_parts(parts, weld);
        let triangulation = t1.elapsed().saturating_sub(weld_wall);
        if weld {
            sp_pipe.annotate("weld", weld_wall, &[]);
        }
        let extraction_wall = sp_pipe.finish().saturating_sub(weld_wall);

        Ok((
            out,
            NodeReport {
                node: 0, // filled by node_extract
                workers,
                active_metacells: records.len() as u64,
                cells_visited: mc.cells_visited,
                active_cells: mc.active_cells,
                triangles: mc.triangles,
                bytes_read,
                amc_retrieval,
                triangulation,
                extraction_wall,
                retrieval_busy: amc_retrieval,
                triangulation_busy,
                peak_queue_records: records.len() as u64,
                peak_queue_bytes: bytes_read,
                peak_queue_work: staged_cells,
                exec,
                weld: weld_stats,
                weld_wall,
                rendering: Duration::ZERO,
                io: Default::default(), // filled by node_extract
            },
        ))
    }

    /// Extract one encoded record into `out` through the chosen backend,
    /// reusing the caller's decode buffer and kernel scratch.
    fn triangulate_record(
        &self,
        backend: &dyn ExtractionBackend<S>,
        rec: &[u8],
        iso: f32,
        out: &mut BlockOutput,
        scratch: &mut BackendScratch,
        scalars: &mut Vec<S>,
    ) -> McStats {
        let (id, _vmin, used) =
            MetacellRecord::<S>::decode_scalars_into(rec, &self.layout, scalars);
        debug_assert_eq!(used, rec.len());
        let (origin, _) = self.layout.vertex_box(id);
        let local = Volume::from_vec(self.layout.cell_dims(id), std::mem::take(scalars));
        let domain = BlockDomain {
            origin,
            volume_dims: self.layout.volume_dims(),
        };
        let stats = backend.extract_block(&local, iso, &domain, out, scratch);
        *scalars = local.into_vec();
        stats
    }

    /// Extract one contiguous batch of encoded records into one accumulated
    /// block output, reusing a single decode buffer and scratch across the
    /// batch.
    fn triangulate_batch(
        &self,
        backend: &dyn ExtractionBackend<S>,
        records: &[Vec<u8>],
        iso: f32,
    ) -> (BlockOutput, McStats) {
        let mut out = BlockOutput::default();
        let mut mc = McStats::default();
        let mut scratch = BackendScratch::new();
        let mut scalars: Vec<S> = Vec::new();
        for rec in records {
            let stats =
                self.triangulate_record(backend, rec, iso, &mut out, &mut scratch, &mut scalars);
            mc.merge(&stats);
        }
        (out, mc)
    }

    /// Swap one node's record store (I/O-modeling experiments: throttled or
    /// instrumented devices). The replacement must serve byte-identical data
    /// at the same offsets as the original store or queries will decode
    /// garbage.
    pub fn replace_store(&mut self, node: usize, store: RecordStore) {
        self.stores[node] = store;
    }

    /// Extract, render locally on every node, and sort-last composite onto
    /// the tiled display (§5.1's full pipeline, metric (iii) included). The
    /// shuffle is handed off in-process; use
    /// [`Cluster::extract_and_render_via`] to route it through an explicit
    /// compositing transport.
    pub fn extract_and_render(
        &self,
        iso: f32,
        camera: &Camera,
        tiles: &TileLayout,
        base_color: [f32; 3],
    ) -> io::Result<(Framebuffer, ClusterExtraction)> {
        self.extract_and_render_via(iso, camera, tiles, base_color, &mut LocalTransport)
    }

    /// [`Cluster::extract_and_render`] with the region shuffle routed
    /// through `transport` (the modeled interconnect, a real TCP socket —
    /// any [`Transport`]). The composited framebuffer is bit-identical for
    /// every lossless transport; only the transport's accounted cost
    /// differs.
    pub fn extract_and_render_via(
        &self,
        iso: f32,
        camera: &Camera,
        tiles: &TileLayout,
        base_color: [f32; 3],
        transport: &mut dyn Transport,
    ) -> io::Result<(Framebuffer, ClusterExtraction)> {
        let t_total = Instant::now();
        let mut extraction = self.extract(iso)?;

        // Per-node local rendering (one thread per node, own framebuffer).
        let frames: Vec<(Framebuffer, Duration)> = std::thread::scope(|scope| {
            let handles: Vec<_> = extraction
                .meshes
                .iter()
                .map(|mesh| {
                    scope.spawn(move || {
                        let mut fb = Framebuffer::new(tiles.width, tiles.height);
                        let t = Instant::now();
                        rasterize_mesh(mesh, camera, base_color, &mut fb);
                        (fb, t.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("render thread panicked"))
                .collect()
        });
        let mut buffers = Vec::with_capacity(frames.len());
        for (i, (fb, dt)) in frames.into_iter().enumerate() {
            extraction.report.nodes[i].rendering = dt;
            buffers.push(fb);
        }

        // Sort-last composite: the only communication of the whole query.
        let t_comp = Instant::now();
        let (wall, wire_bytes) = tiles.composite_via(&buffers, transport)?;
        extraction.report.composite_wall = t_comp.elapsed();
        extraction.report.composite_wire_bytes = wire_bytes;
        extraction.report.total_wall = t_total.elapsed();
        Ok((wall, extraction))
    }

    /// Per-node `(active_metacells, triangles)` distribution for an isovalue —
    /// the rows of Tables 6 and 7.
    pub fn distribution(&self, iso: f32) -> io::Result<Vec<(u64, u64)>> {
        let e = self.extract(iso)?;
        Ok(e.report
            .nodes
            .iter()
            .map(|n| (n.active_metacells, n.triangles))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oociso_march::mc::marching_cubes;
    use oociso_render::rasterize_soup;
    use oociso_volume::field::{FieldExt, SphereField};
    use oociso_volume::Dims3;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_cluster_{}_{}", std::process::id(), name));
        p
    }

    fn test_volume() -> Volume<u8> {
        SphereField::centered(0.32, 128.0).sample(Dims3::new(33, 33, 33))
    }

    #[test]
    fn parallel_matches_serial_triangles() {
        let vol = test_volume();
        // ground truth: whole-volume marching cubes
        let mut truth = TriangleSoup::new();
        marching_cubes(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut truth,
        );

        let d1 = tmpdir("p1");
        let (c1, stats1) = Cluster::build(&vol, &d1, 1, &ClusterBuildOptions::default()).unwrap();
        let e1 = c1.extract(128.0).unwrap();
        assert_eq!(e1.report.total_triangles() as usize, truth.len());
        assert!(stats1.kept_metacells > 0);

        let d4 = tmpdir("p4");
        let (c4, stats4) = Cluster::build(&vol, &d4, 4, &ClusterBuildOptions::default()).unwrap();
        let e4 = c4.extract(128.0).unwrap();
        assert_eq!(e4.report.total_triangles() as usize, truth.len());
        assert_eq!(stats1.kept_metacells, stats4.kept_metacells);
        assert_eq!(
            e1.report.total_active_metacells(),
            e4.report.total_active_metacells()
        );
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d4).ok();
    }

    fn assert_same_triangle_stream(a: &TriangleSoup, b: &TriangleSoup, ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: triangle count");
        for (x, y) in a.triangles().iter().zip(b.triangles()) {
            assert_eq!(x, y, "{ctx}: triangle stream diverged");
        }
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let vol = test_volume();
        let dir = tmpdir("workers");
        let (c, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
        let base = c.extract_with_workers(128.0, 1).unwrap();
        assert_eq!(base.report.nodes[0].workers, 1);
        let base_soup = base.merged_soup();
        assert!(!base_soup.is_empty());
        for workers in [2, 3, 8] {
            // streaming (default mode): spawns exactly the requested pool
            let e = c.extract_with_workers(128.0, workers).unwrap();
            assert_eq!(e.report.nodes[0].workers, workers, "workers={workers}");
            // per-record parts merged by sequence number → the triangle
            // stream is bit-identical, not just multiset-equal
            assert_same_triangle_stream(
                &e.merged_soup(),
                &base_soup,
                &format!("streaming workers={workers}"),
            );
            assert_eq!(e.report.total_triangles(), base.report.total_triangles());

            // batch mode: reported workers = chunks actually spawned, never
            // the raw request
            let b = c
                .extract_with_options(
                    128.0,
                    &ExtractOptions {
                        workers: Some(workers),
                        mode: ExtractMode::Batch,
                        ..Default::default()
                    },
                )
                .unwrap();
            let amc = b.report.nodes[0].active_metacells as usize;
            let expected = amc.div_ceil(amc.div_ceil(workers));
            assert_eq!(
                b.report.nodes[0].workers, expected,
                "batch workers={workers}"
            );
            assert_same_triangle_stream(
                &b.merged_soup(),
                &base_soup,
                &format!("batch workers={workers}"),
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_bound_does_not_change_output_and_caps_memory() {
        let vol = test_volume();
        let dir = tmpdir("bounds");
        let (c, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
        let base = c
            .extract_with_options(
                128.0,
                &ExtractOptions {
                    workers: Some(1),
                    mode: ExtractMode::Batch,
                    ..Default::default()
                },
            )
            .unwrap();
        let base_soup = base.merged_soup();
        for bound in [1usize, 4, usize::MAX] {
            for workers in [1usize, 3] {
                let e = c
                    .extract_with_options(
                        128.0,
                        &ExtractOptions {
                            workers: Some(workers),
                            mode: ExtractMode::Streaming {
                                queue_records: bound,
                            },
                            ..Default::default()
                        },
                    )
                    .unwrap();
                assert_same_triangle_stream(
                    &e.merged_soup(),
                    &base_soup,
                    &format!("bound={bound} workers={workers}"),
                );
                let n = &e.report.nodes[0];
                if bound != usize::MAX {
                    assert!(
                        n.peak_queue_records <= bound as u64,
                        "bound={bound}: peak {} records",
                        n.peak_queue_records
                    );
                }
                assert!(n.peak_queue_bytes > 0);
                assert!(n.bytes_read >= n.peak_queue_bytes);
                assert_eq!(n.exec.records_emitted, n.active_metacells);
                assert!(n.exec.bulk_actions + n.exec.prefix_actions > 0);
            }
        }
        // the batch path reports the whole staged active set as its peak
        assert_eq!(
            base.report.nodes[0].peak_queue_bytes,
            base.report.nodes[0].bytes_read
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_active_isovalue_reports_zero_workers() {
        // test_volume's sphere field peaks at level + slope·radius = 192, so
        // iso 250 cannot activate any metacell
        let vol = test_volume();
        let dir = tmpdir("empty_iso");
        let (c, _) = Cluster::build(&vol, &dir, 2, &ClusterBuildOptions::default()).unwrap();
        for mode in [ExtractMode::default(), ExtractMode::Batch] {
            let e = c
                .extract_with_options(
                    250.0,
                    &ExtractOptions {
                        workers: Some(4),
                        mode,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert!(e.merged_soup().is_empty(), "{mode:?}");
            assert_eq!(e.report.total_triangles(), 0);
            assert_eq!(e.report.total_active_metacells(), 0);
            for n in &e.report.nodes {
                assert_eq!(n.workers, 0, "{mode:?}: empty node must spawn no pool");
                assert_eq!(n.bytes_read, 0);
                assert_eq!(n.io.read_calls, 0, "{mode:?}: empty plan reads nothing");
                assert_eq!(n.peak_queue_records, 0);
            }
            // merged report stays usable downstream
            let (mesh, report) = e.into_merged();
            assert!(mesh.is_empty());
            assert_eq!(report.total_triangles(), 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn extraction_matches_reference_kernel_exactly() {
        // cluster path (slab kernel over decoded metacell records) vs the
        // monolithic reference kernel: identical canonical triangle multiset
        let vol = test_volume();
        let mut truth = TriangleSoup::new();
        marching_cubes(
            &vol,
            128.0,
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            &mut truth,
        );
        let dir = tmpdir("exact");
        let (c, _) = Cluster::build(&vol, &dir, 3, &ClusterBuildOptions::default()).unwrap();
        let e = c.extract(128.0).unwrap();
        // the integer isovalue on u8 samples puts some crossings exactly on
        // cell corners; those triangles collapse under quantization and the
        // node welds drop them, so the extracted multiset must equal truth
        // minus exactly the collapsed triangles
        let (kept, collapsed) =
            oociso_march::split_collapsed(oociso_march::canonical_triangles(&truth));
        assert!(collapsed > 0, "iso 128 should collapse corner crossings");
        assert_eq!(e.report.total_weld().degenerate_dropped, collapsed as u64);
        assert_eq!(kept, oociso_march::canonical_triangles(&e.merged_soup()));
        // per-node meshes really are indexed: shared crossings deduplicated
        for m in &e.meshes {
            assert!(m.num_vertices() < 3 * m.len(), "no dedup in node mesh");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Rebuild a node store over a throttled in-memory copy of its bricks:
    /// reads sleep like a slow disk while the CPU stays free, exactly the
    /// regime the streaming pipeline exists for.
    fn throttled_store(
        dir: &Path,
        node: usize,
        latency: Duration,
        bytes_per_sec: f64,
    ) -> RecordStore {
        let bytes = std::fs::read(DiskFarm::new(dir, node + 1).store_path(node)).unwrap();
        RecordStore::from_device(Box::new(oociso_exio::ThrottledDevice::new(
            oociso_exio::MemDevice::new(bytes),
            latency,
            bytes_per_sec,
        )))
    }

    #[test]
    fn streaming_overlaps_retrieval_with_triangulation() {
        // A dense gyroid keeps triangulation busy; the throttled device makes
        // retrieval take real wall-clock. Phase-serially (batch mode) the two
        // costs add; the pipeline must hide most of the shorter phase.
        use oociso_volume::field::GyroidField;
        let vol: Volume<u8> = GyroidField {
            cells: 3.0,
            level: 128.0,
            amplitude: 70.0,
        }
        .sample(Dims3::cube(65));
        let dir = tmpdir("throttle");
        let (mut c, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
        let plain = c.extract_with_workers(128.0, 1).unwrap();
        let throttle = || throttled_store(&dir, 0, Duration::from_millis(2), 2_000_000.0);

        c.replace_store(0, throttle());
        let batch = c
            .extract_with_options(
                128.0,
                &ExtractOptions {
                    workers: Some(1),
                    mode: ExtractMode::Batch,
                    ..Default::default()
                },
            )
            .unwrap();

        // Queue bound must cover one 32 KB read-chunk's burst of records
        // (~45 u8 metacells), or the producer blocks mid-burst and the
        // single-core overlap window shrinks to the bound.
        c.replace_store(0, throttle()); // fresh device, fresh I/O counters
        let streamed = c
            .extract_with_options(
                128.0,
                &ExtractOptions {
                    workers: Some(1),
                    mode: ExtractMode::Streaming { queue_records: 64 },
                    ..Default::default()
                },
            )
            .unwrap();

        // throttling must not change the geometry
        assert_same_triangle_stream(&streamed.merged_soup(), &plain.merged_soup(), "throttled");
        assert_same_triangle_stream(&batch.merged_soup(), &plain.merged_soup(), "batch");

        let nb = &batch.report.nodes[0];
        let ns = &streamed.report.nodes[0];
        let serial = nb.amc_retrieval + nb.triangulation;
        let shorter = nb.amc_retrieval.min(nb.triangulation);
        assert!(
            shorter > Duration::from_millis(20),
            "phases too short to measure overlap: retrieval {:?}, triangulation {:?}",
            nb.amc_retrieval,
            nb.triangulation
        );
        // the pipeline must beat phase-serial execution by a real margin —
        // at least a third of the shorter phase hidden (generous to absorb
        // scheduler noise; ideal overlap hides all of it)
        assert!(
            ns.extraction_wall + shorter / 3 < serial,
            "no overlap: streamed wall {:?} vs phase-serial {:?} (retrieval {:?} + triangulation {:?})",
            ns.extraction_wall,
            serial,
            nb.amc_retrieval,
            nb.triangulation
        );
        assert!(
            ns.overlap_saved() > Duration::ZERO,
            "report must show saved wall-clock: {ns:?}"
        );
        assert!(ns.overlap_fraction() > 0.0);
        // bounded staging: the queue held at most its bound, far below the
        // batch path's whole-active-set staging
        assert!(ns.peak_queue_records <= 64);
        assert!(ns.peak_queue_bytes < nb.peak_queue_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_read_failure_is_err_not_deadlock() {
        // Truncate the store: plan execution hits EOF mid-stream. The
        // pipeline must close the queue, reap its workers, and surface Err.
        let vol = test_volume();
        let dir = tmpdir("trunc");
        let (mut c, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
        // keep only a sliver: any planned read must run past EOF
        let full = std::fs::read(DiskFarm::new(&dir, 1).store_path(0)).unwrap();
        let sliver = full[..4].to_vec();
        c.replace_store(0, RecordStore::in_memory(sliver));
        for mode in [ExtractMode::default(), ExtractMode::Batch] {
            let err = c
                .extract_with_options(
                    128.0,
                    &ExtractOptions {
                        workers: Some(3),
                        mode,
                        ..Default::default()
                    },
                )
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{mode:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_write_failure_surfaces_as_err() {
        // A sink that admits a few records then reports a full disk: pass 2
        // must abort with Err instead of panicking mid-stream.
        struct FullDisk {
            writes: std::cell::Cell<usize>,
        }
        impl oociso_exio::WriteAt for FullDisk {
            fn write_all_at(&self, _buf: &[u8], _offset: u64) -> io::Result<()> {
                let n = self.writes.get() + 1;
                self.writes.set(n);
                if n > 2 {
                    Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
                } else {
                    Ok(())
                }
            }
        }

        let vol = test_volume();
        let vol_path = tmpdir("fullvol.vol");
        oociso_volume::io::write_volume(&vol_path, &vol).unwrap();
        let layout = MetacellLayout::new(vol.dims(), 9);
        let (built, _) = scan_volume(&vol, &layout);
        let intervals: Vec<MetacellInterval> = built.iter().map(|b| b.interval).collect();
        assert!(intervals.len() > 3, "need enough records to pass the fuse");
        let placement: Vec<(usize, u64)> = intervals
            .iter()
            .scan(0u64, |cursor, iv| {
                let off = *cursor;
                *cursor += layout.record_len(iv.id, 1) as u64;
                Some((0usize, off))
            })
            .collect();
        let disk = FullDisk {
            writes: std::cell::Cell::new(0),
        };
        let sinks: Vec<&dyn oociso_exio::WriteAt> = vec![&disk];
        let err = write_records_pass::<u8>(&vol_path, 9, &intervals, &placement, &sinks)
            .expect_err("full disk must fail the pass");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(disk.writes.get(), 3, "pass must stop at the failing write");
        std::fs::remove_file(&vol_path).ok();
    }

    #[test]
    fn out_of_core_build_matches_in_memory_build() {
        let vol = test_volume();
        let vol_path = tmpdir("ooc.vol");
        oociso_volume::io::write_volume(&vol_path, &vol).unwrap();

        let d_mem = tmpdir("ooc_mem");
        let d_file = tmpdir("ooc_file");
        let opts = ClusterBuildOptions::default();
        let (c_mem, s_mem) = Cluster::build(&vol, &d_mem, 3, &opts).unwrap();
        let (c_file, s_file) =
            Cluster::<u8>::build_from_file(&vol_path, &d_file, 3, &opts).unwrap();
        assert_eq!(s_mem, s_file);
        // store files byte-identical
        for i in 0..3 {
            let a = std::fs::read(d_mem.join(format!("node{i:03}.bricks"))).unwrap();
            let b = std::fs::read(d_file.join(format!("node{i:03}.bricks"))).unwrap();
            assert_eq!(a, b, "node {i} store differs");
        }
        // queries agree
        for iso in [80.0, 128.0, 180.0] {
            let em = c_mem.extract(iso).unwrap();
            let ef = c_file.extract(iso).unwrap();
            assert_eq!(em.report.total_triangles(), ef.report.total_triangles());
            assert_eq!(
                em.report.total_active_metacells(),
                ef.report.total_active_metacells()
            );
        }
        std::fs::remove_file(&vol_path).ok();
        std::fs::remove_dir_all(&d_mem).ok();
        std::fs::remove_dir_all(&d_file).ok();
    }

    #[test]
    fn reopen_preserves_queries() {
        let vol = test_volume();
        let dir = tmpdir("reopen");
        let (c, _) = Cluster::build(&vol, &dir, 2, &ClusterBuildOptions::default()).unwrap();
        let before = c.extract(100.0).unwrap();
        drop(c);
        let c2 = Cluster::<u8>::open(&dir, true).unwrap();
        let after = c2.extract(100.0).unwrap();
        assert_eq!(
            before.report.total_triangles(),
            after.report.total_triangles()
        );
        assert_eq!(
            before.report.total_active_metacells(),
            after.report.total_active_metacells()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_scalar_rejected_on_open() {
        let vol = test_volume();
        let dir = tmpdir("scalar");
        let (_c, _) = Cluster::build(&vol, &dir, 1, &ClusterBuildOptions::default()).unwrap();
        assert!(Cluster::<u16>::open(&dir, false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn balance_across_nodes() {
        let vol = test_volume();
        let dir = tmpdir("balance");
        let (c, _) = Cluster::build(&vol, &dir, 4, &ClusterBuildOptions::default()).unwrap();
        for iso in [60.0, 100.0, 128.0, 160.0, 200.0] {
            let dist = c.distribution(iso).unwrap();
            let total: u64 = dist.iter().map(|d| d.0).sum();
            if total < 16 {
                continue;
            }
            let max = dist.iter().map(|d| d.0).max().unwrap();
            let mean = total as f64 / dist.len() as f64;
            assert!(
                max as f64 / mean < 1.75,
                "iso {iso}: metacell distribution {dist:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_phases_populated() {
        let vol = test_volume();
        let dir = tmpdir("phases");
        let (c, _) = Cluster::build(&vol, &dir, 2, &ClusterBuildOptions::default()).unwrap();
        let e = c.extract(128.0).unwrap();
        for n in &e.report.nodes {
            assert!(n.bytes_read > 0);
            assert!(n.io.read_calls > 0);
            assert!(n.cells_visited >= n.active_cells);
            assert!(n.triangles > 0);
            assert!(n.extraction_wall > Duration::ZERO);
        }
        let exec = e.report.total_exec();
        assert_eq!(exec.records_emitted, e.report.total_active_metacells());
        assert!(exec.bulk_actions + exec.prefix_actions > 0);
        assert!(e.report.total_wall > Duration::ZERO);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_durations_equal_trace_span_sums() {
        // Satellite of the observability layer: the report's Duration fields
        // are *derived views* of the trace's spans — set from the same
        // measured values — so the sums must match exactly, not
        // approximately.
        let vol = test_volume();
        let dir = tmpdir("trace_equiv");
        let (c, _) = Cluster::build(&vol, &dir, 2, &ClusterBuildOptions::default()).unwrap();
        for mode in [ExtractMode::default(), ExtractMode::Batch] {
            let trace = Trace::new(42, 4096);
            let e = c
                .extract_with_options(
                    128.0,
                    &ExtractOptions {
                        workers: Some(2),
                        mode,
                        lods: LodSpec::pyramid(),
                        trace: trace.clone(),
                        ..Default::default()
                    },
                )
                .unwrap();
            let nodes = e.report.nodes.clone();
            assert!(
                nodes.iter().all(|n| n.active_metacells > 0),
                "equivalence needs every node active"
            );
            let sum = |f: fn(&NodeReport) -> Duration| nodes.iter().map(f).sum::<Duration>();
            assert_eq!(
                trace.sum("execute_plan"),
                sum(|n| n.amc_retrieval),
                "{mode:?}"
            );
            assert_eq!(
                trace.sum("triangulate"),
                sum(|n| n.triangulation_busy),
                "{mode:?}"
            );
            assert_eq!(trace.sum("weld"), sum(|n| n.weld_wall), "{mode:?}");
            // extraction_wall is the pipeline span minus the weld it covers
            assert_eq!(
                trace.sum("pipeline"),
                sum(|n| n.extraction_wall + n.weld_wall),
                "{mode:?}"
            );
            assert_eq!(trace.sum("extract"), e.report.total_wall, "{mode:?}");

            let (_chain, report) = e.into_lod_chain();
            assert_eq!(trace.sum("merge_weld"), report.merge_weld_wall, "{mode:?}");
            assert_eq!(trace.sum("lod"), report.lod_wall, "{mode:?}");
            assert_eq!(
                report.total_wall,
                trace.sum("extract") + trace.sum("merge_weld") + trace.sum("lod"),
                "{mode:?}"
            );
            let tree = trace.render_tree();
            assert!(tree.starts_with("extract "), "unexpected tree:\n{tree}");
            assert!(tree.contains("execute_plan"));
            assert!(tree.contains("queue_wait") || mode == ExtractMode::Batch);
            assert!(tree.contains("decimate"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_composites_all_nodes() {
        let vol = test_volume();
        let dir = tmpdir("render");
        let (c, _) = Cluster::build(&vol, &dir, 4, &ClusterBuildOptions::default()).unwrap();
        let e0 = c.extract(128.0).unwrap();
        let soup = e0.merged_soup();
        let bounds = soup.bounds();
        let camera = Camera::orbiting(&bounds, 0.6, 0.5, 2.5);
        let tiles = TileLayout::paper_wall(128, 128);
        let (wall, e) = c
            .extract_and_render(128.0, &camera, &tiles, [0.9, 0.85, 0.6])
            .unwrap();
        assert!(wall.covered_pixels() > 100, "sphere should cover pixels");
        assert!(e.report.composite_wire_bytes > 0);
        for n in &e.report.nodes {
            assert!(n.rendering > Duration::ZERO);
        }

        // the composited wall must equal rendering the merged soup directly
        let mut reference = Framebuffer::new(128, 128);
        rasterize_soup(&soup, &camera, [0.9, 0.85, 0.6], &mut reference);
        let mut diff = 0usize;
        for y in 0..128 {
            for x in 0..128 {
                if reference.color_at(x, y) != wall.color_at(x, y) {
                    diff += 1;
                }
            }
        }
        // identical except possibly where equal depths tie-break differently
        assert!(diff < 40, "{diff} differing pixels");
        std::fs::remove_dir_all(&dir).ok();
    }
}
