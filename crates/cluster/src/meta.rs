//! Cluster directory metadata.
//!
//! A preprocessed cluster directory holds, per node, a brick store
//! (`nodeNNN.bricks`) and an index (`nodeNNN.index`), plus one `cluster.meta`
//! file recording what produced them. The format is a simple `key=value` text
//! file so a human can inspect a dataset directory.

use oociso_volume::Dims3;
use std::io::{self, Read, Write};
use std::path::Path;

/// Metadata describing a preprocessed cluster directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterMeta {
    /// Grid dimensions of the source volume (vertices).
    pub dims: Dims3,
    /// Metacell vertices per axis (the paper's `k = 9`).
    pub metacell_k: usize,
    /// Scalar type name ("u8", "u16", "f32").
    pub scalar: String,
    /// Number of nodes (stripes).
    pub nodes: usize,
}

impl ClusterMeta {
    /// File name inside the cluster directory.
    pub const FILE: &'static str = "cluster.meta";

    /// Write to `dir/cluster.meta`.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(Self::FILE))?;
        writeln!(f, "format=oociso-cluster-v1")?;
        writeln!(f, "nx={}", self.dims.nx)?;
        writeln!(f, "ny={}", self.dims.ny)?;
        writeln!(f, "nz={}", self.dims.nz)?;
        writeln!(f, "metacell_k={}", self.metacell_k)?;
        writeln!(f, "scalar={}", self.scalar)?;
        writeln!(f, "nodes={}", self.nodes)?;
        Ok(())
    }

    /// Read from `dir/cluster.meta`.
    pub fn load(dir: &Path) -> io::Result<ClusterMeta> {
        let mut text = String::new();
        std::fs::File::open(dir.join(Self::FILE))?.read_to_string(&mut text)?;
        let mut nx = None;
        let mut ny = None;
        let mut nz = None;
        let mut k = None;
        let mut scalar = None;
        let mut nodes = None;
        let mut format_ok = false;
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "format" => format_ok = value == "oociso-cluster-v1",
                "nx" => nx = value.parse().ok(),
                "ny" => ny = value.parse().ok(),
                "nz" => nz = value.parse().ok(),
                "metacell_k" => k = value.parse().ok(),
                "scalar" => scalar = Some(value.to_string()),
                "nodes" => nodes = value.parse().ok(),
                _ => {}
            }
        }
        let missing = || io::Error::new(io::ErrorKind::InvalidData, "incomplete cluster.meta");
        if !format_ok {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown cluster.meta format",
            ));
        }
        Ok(ClusterMeta {
            dims: Dims3::new(
                nx.ok_or_else(missing)?,
                ny.ok_or_else(missing)?,
                nz.ok_or_else(missing)?,
            ),
            metacell_k: k.ok_or_else(missing)?,
            scalar: scalar.ok_or_else(missing)?,
            nodes: nodes.ok_or_else(missing)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oociso_meta_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("rt");
        let meta = ClusterMeta {
            dims: Dims3::new(256, 256, 240),
            metacell_k: 9,
            scalar: "u8".to_string(),
            nodes: 4,
        };
        meta.save(&dir).unwrap();
        assert_eq!(ClusterMeta::load(&dir).unwrap(), meta);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_fields_rejected() {
        let dir = tmpdir("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(ClusterMeta::FILE),
            "format=oociso-cluster-v1\nnx=8\n",
        )
        .unwrap();
        assert!(ClusterMeta::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_format_rejected() {
        let dir = tmpdir("fmt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(ClusterMeta::FILE), "format=other\n").unwrap();
        assert!(ClusterMeta::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
