//! Span-space and index anatomy: what the compact interval tree actually
//! stores, and what a query plan looks like.
//!
//! Builds the index over an RM proxy step and prints: the endpoint
//! statistics (N intervals vs n distinct endpoints), the per-level brick
//! entry counts, the size comparison against the standard interval tree, and
//! the Case 1 / Case 2 composition of plans across the isovalue sweep.
//!
//! Run: `cargo run --release --example span_space_explorer`

use oociso::itree::plan::ReadAction;
use oociso::itree::size::{compact_size, standard_size};
use oociso::itree::{CompactIntervalTree, StandardIntervalTree};
use oociso::metacell::{scan_volume, MetacellInterval, MetacellLayout};
use oociso::volume::{Dims3, RmProxy};

fn main() {
    let dims = Dims3::new(96, 96, 90);
    let vol = RmProxy::with_seed(1).volume(220, dims);
    let layout = MetacellLayout::paper(dims);
    let (built, stats) = scan_volume(&vol, &layout);
    let intervals: Vec<MetacellInterval> = built.iter().map(|b| b.interval).collect();

    println!("== span space ==");
    println!("metacells kept N = {}", intervals.len());
    let mut eps: Vec<u32> = intervals
        .iter()
        .flat_map(|iv| [iv.min_key, iv.max_key])
        .collect();
    eps.sort_unstable();
    eps.dedup();
    println!(
        "distinct endpoints n = {} (one-byte field: n ≤ 256)",
        eps.len()
    );
    println!(
        "culled constant metacells: {} ({:.0}%)",
        stats.culled_metacells,
        stats.culled_fraction() * 100.0
    );

    let mut cursor = 0u64;
    let tree = CompactIntervalTree::build(&intervals, &mut |iv| {
        let len = layout.record_len(iv.id, 1) as u64;
        let s = oociso::exio::Span {
            offset: cursor,
            len,
        };
        cursor += len;
        Ok(s)
    })
    .expect("build");

    println!("\n== compact interval tree ==");
    println!(
        "nodes: {}, height: {}, brick entries: {}",
        tree.num_nodes(),
        tree.height(),
        tree.num_entries()
    );
    let cs = compact_size(&tree, 1);
    let ss = standard_size(&StandardIntervalTree::build(&intervals), 1);
    println!(
        "compact size:  {:>8.1} KB ({} entries)",
        cs.kib(),
        cs.entries
    );
    println!(
        "standard size: {:>8.1} KB ({} entries) -> {:.1}x larger",
        ss.kib(),
        ss.entries,
        ss.bytes as f64 / cs.bytes as f64
    );

    println!("\n== query plans ==");
    println!(
        "{:>5} {:>7} {:>7} {:>12} {:>12}",
        "iso", "bulk", "prefix", "bulk MB", "max MB"
    );
    for iso in (10..=210).step_by(40) {
        let plan = tree.plan(iso as u32);
        let bulk = plan
            .actions
            .iter()
            .filter(|a| matches!(a, ReadAction::Bulk { .. }))
            .count();
        let prefix = plan.actions.len() - bulk;
        println!(
            "{:>5} {:>7} {:>7} {:>12.2} {:>12.2}",
            iso,
            bulk,
            prefix,
            plan.bulk_bytes() as f64 / 1e6,
            plan.max_bytes() as f64 / 1e6
        );
    }
    println!("\nCase 1 (bulk) actions read whole brick ranges sequentially; Case 2");
    println!("(prefix) actions stream ascending-vmin bricks and stop early. Bricks");
    println!("whose smallest vmin exceeds the isovalue cost no I/O at all.");
}
