//! Time-varying exploration (§5.2): preprocess a series of time steps once,
//! then scrub through time at a fixed isovalue — each step's index is already
//! in memory, only that step's active metacells are read from disk.
//!
//! Run: `cargo run --release --example time_varying`

use oociso::core::{PreprocessOptions, TimeVaryingDatabase};
use oociso::volume::{Dims3, RmProxy};

fn main() -> std::io::Result<()> {
    let dims = Dims3::new(64, 64, 60);
    let steps = 8;
    let first = 80u32;
    let proxy = RmProxy::with_seed(42);
    let root = std::env::temp_dir().join("oociso-timevarying");

    println!(
        "preprocessing {steps} steps at {}x{}x{}…",
        dims.nx, dims.ny, dims.nz
    );
    let db = TimeVaryingDatabase::preprocess_series(
        &root,
        steps,
        &PreprocessOptions {
            nodes: 2,
            ..Default::default()
        },
        |s| proxy.volume(first + (s as u32) * 20, dims),
    )?;
    println!(
        "total index for {} steps: {:.1} KB (stays in memory; the paper's 270-step\nfull-resolution index is 1.6 MB)\n",
        db.num_steps(),
        db.index_bytes() as f64 / 1024.0
    );

    let iso = 70.0;
    println!("scrubbing isovalue {iso} through time:");
    println!(
        "{:>6} {:>10} {:>12} {:>10}",
        "step", "active MC", "triangles", "MB read"
    );
    for s in 0..db.num_steps() {
        let r = db.extract(s, iso)?;
        println!(
            "{:>6} {:>10} {:>12} {:>10.2}",
            first + (s as u32) * 20,
            r.report.total_active_metacells(),
            r.report.total_triangles(),
            r.report.total_bytes_read() as f64 / 1e6
        );
    }
    println!("\nthe instability grows: active metacells and triangles increase with time.");
    Ok(())
}
