//! The paper's full parallel pipeline — and the regenerator for **Figure 4**
//! (isosurface at isovalue 190, time step 250, 256×256×240 down-sampled grid).
//!
//! Four simulated cluster nodes each hold a stripe of every brick on their
//! own store, extract and rasterize locally, then sort-last composite onto a
//! 2×2 tiled display wall. Writes the wall image and each node's local
//! framebuffer so the striping is visible.
//!
//! Run: `cargo run --release --example cluster_wall_display`
//! (set OOCISO_FULL=1 for the paper's full 256×256×240 demo grid)

use oociso::core::{ClusterDatabase, PreprocessOptions, SimulatedTimeModel};
use oociso::render::{Camera, TileLayout};
use oociso::volume::{Dims3, RmProxy};

fn main() -> std::io::Result<()> {
    let full = std::env::var("OOCISO_FULL").is_ok();
    let dims = if full {
        Dims3::new(256, 256, 240) // the paper's Figure 4 grid
    } else {
        Dims3::new(128, 128, 120)
    };
    let (step, iso, nodes) = (250u32, 190.0f32, 4usize);

    println!(
        "generating RM proxy step {step} at {}x{}x{}…",
        dims.nx, dims.ny, dims.nz
    );
    let vol = RmProxy::with_seed(1).volume(step, dims);
    let dir = std::env::temp_dir().join("oociso-wall");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes,
            mmap: true,
            ..Default::default()
        },
    )?;

    // the paper's four-way tiled wall
    let wall = TileLayout::paper_wall(1024, 1024);
    let probe = db.extract(iso)?;
    let camera = Camera::orbiting(&probe.mesh.bounds(), 0.9, 0.45, 1.9);
    let (image, extraction) = db.extract_and_render(iso, &camera, &wall, [0.9, 0.78, 0.5])?;

    let out = std::env::temp_dir().join("oociso-figure4-wall.ppm");
    image.write_ppm(&out)?;
    println!("\nFigure 4 reproduction -> {}", out.display());

    let model = SimulatedTimeModel::paper();
    println!("\nper-node breakdown (isovalue {iso}):");
    println!(
        "{:>5} {:>9} {:>11} {:>14} {:>13} {:>12}",
        "node", "AMC", "triangles", "io sim (ms)", "tri sim (ms)", "render (ms)"
    );
    for n in &extraction.report.nodes {
        println!(
            "{:>5} {:>9} {:>11} {:>14.1} {:>13.1} {:>12.1}",
            n.node,
            n.active_metacells,
            n.triangles,
            model.node_io_time(n).as_secs_f64() * 1e3,
            model.node_triangulation_time(n).as_secs_f64() * 1e3,
            n.rendering.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\ncomposite moved {:.1} MB over the (modeled 10 Gbps) interconnect in {:.1} sim ms —",
        extraction.report.composite_wire_bytes as f64 / 1e6,
        model
            .composite_time(nodes, wall.num_tiles(), (1024, 1024))
            .as_secs_f64()
            * 1e3
    );
    println!("orders of magnitude below the extraction time, as the paper observes.");
    Ok(())
}
