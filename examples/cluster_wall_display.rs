//! The paper's full parallel pipeline — and the regenerator for **Figure 4**
//! (isosurface at isovalue 190, time step 250, 256×256×240 down-sampled grid).
//!
//! Four simulated cluster nodes each hold a stripe of every brick on their
//! own store, extract and rasterize locally, then sort-last composite onto a
//! 2×2 tiled display wall. The compositing shuffle runs through the
//! pluggable [`Transport`] trait: by default the modeled 10 Gbps
//! interconnect; set `OOCISO_TRANSPORT=tcp` to push every remote region
//! through real loopback TCP sockets instead — the image is bit-identical,
//! only the (modeled vs measured) shuffle cost changes.
//!
//! Run: `cargo run --release --example cluster_wall_display`
//! (set OOCISO_FULL=1 for the paper's full 256×256×240 demo grid,
//!  OOCISO_TRANSPORT=tcp for real sockets)

use oociso::core::{ClusterDatabase, PreprocessOptions, SimulatedTimeModel};
use oociso::render::{Camera, InterconnectModel, SimTransport, TileLayout, Transport};
use oociso::serve::TcpLoopbackTransport;
use oociso::volume::{Dims3, RmProxy};

fn main() -> std::io::Result<()> {
    let full = std::env::var("OOCISO_FULL").is_ok();
    let dims = if full {
        Dims3::new(256, 256, 240) // the paper's Figure 4 grid
    } else {
        Dims3::new(128, 128, 120)
    };
    let (step, iso, nodes) = (250u32, 190.0f32, 4usize);

    println!(
        "generating RM proxy step {step} at {}x{}x{}…",
        dims.nx, dims.ny, dims.nz
    );
    let vol = RmProxy::with_seed(1).volume(step, dims);
    let dir = std::env::temp_dir().join("oociso-wall");
    let db = ClusterDatabase::preprocess(
        &vol,
        &dir,
        &PreprocessOptions {
            nodes,
            mmap: true,
            ..Default::default()
        },
    )?;

    // pick the compositing transport: modeled interconnect or real sockets
    let use_tcp = std::env::var("OOCISO_TRANSPORT").is_ok_and(|v| v == "tcp");
    let mut transport: Box<dyn Transport> = if use_tcp {
        Box::new(TcpLoopbackTransport::new()?)
    } else {
        Box::new(SimTransport::new(InterconnectModel::infiniband_10g()))
    };

    // the paper's four-way tiled wall
    let wall = TileLayout::paper_wall(1024, 1024);
    let probe = db.extract(iso)?;
    let camera = Camera::orbiting(&probe.mesh.bounds(), 0.9, 0.45, 1.9);
    let (image, extraction) =
        db.extract_and_render_via(iso, &camera, &wall, [0.9, 0.78, 0.5], transport.as_mut())?;

    let out = std::env::temp_dir().join("oociso-figure4-wall.ppm");
    image.write_ppm(&out)?;
    println!("\nFigure 4 reproduction -> {}", out.display());

    let model = SimulatedTimeModel::paper();
    println!("\nper-node breakdown (isovalue {iso}):");
    println!(
        "{:>5} {:>9} {:>11} {:>14} {:>13} {:>12}",
        "node", "AMC", "triangles", "io sim (ms)", "tri sim (ms)", "render (ms)"
    );
    for n in &extraction.report.nodes {
        println!(
            "{:>5} {:>9} {:>11} {:>14.1} {:>13.1} {:>12.1}",
            n.node,
            n.active_metacells,
            n.triangles,
            model.node_io_time(n).as_secs_f64() * 1e3,
            model.node_triangulation_time(n).as_secs_f64() * 1e3,
            n.rendering.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\ncomposite moved {:.1} MB through the `{}` transport in {:.1} {} ms —",
        transport.bytes_moved() as f64 / 1e6,
        transport.name(),
        transport.cost().as_secs_f64() * 1e3,
        if use_tcp { "measured" } else { "modeled" },
    );
    println!("orders of magnitude below the extraction time, as the paper observes.");
    Ok(())
}
