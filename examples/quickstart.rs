//! Quickstart: preprocess a Richtmyer–Meshkov proxy time step, extract an
//! isosurface out-of-core, and render it to a PPM image.
//!
//! Run: `cargo run --release --example quickstart`

use oociso::core::{IsoDatabase, PreprocessOptions};
use oociso::render::Camera;
use oociso::volume::{Dims3, RmProxy};

fn main() -> std::io::Result<()> {
    // 1. A dataset: one time step of the RM instability proxy. The paper's
    //    demo renders the down-sampled 256×256×240 grid; we default to a
    //    quarter of that so the example runs in seconds.
    let dims = Dims3::new(128, 128, 120);
    let step = 250;
    println!(
        "generating RM proxy step {step} at {}x{}x{}…",
        dims.nx, dims.ny, dims.nz
    );
    let volume = RmProxy::with_seed(1).volume(step, dims);

    // 2. Preprocess into an on-disk database: 9×9×9 metacells, constant
    //    metacells culled, bricks laid out by the compact interval tree.
    let dir = std::env::temp_dir().join("oociso-quickstart");
    let db = IsoDatabase::preprocess(&volume, &dir, &PreprocessOptions::default())?;
    let stats = db.preprocess_stats().unwrap();
    println!(
        "preprocessed: {} metacells kept, {} culled ({:.0}% of raw size), index {} bytes",
        stats.kept_metacells,
        stats.culled_metacells,
        stats.size_ratio() * 100.0,
        db.index_bytes()
    );

    // 3. Extract an isosurface. Only active metacells are read from disk —
    //    the report shows exactly how much I/O the query cost.
    let iso = 190.0;
    let surface = db.extract(iso)?;
    let node = &surface.report.nodes[0];
    println!(
        "isovalue {iso}: {} active metacells, {} triangles ({:.1} MB read, {} seeks)",
        node.active_metacells,
        surface.mesh.len(),
        node.bytes_read as f64 / 1e6,
        node.io.seeks,
    );

    // 4. Render to an image.
    let camera = Camera::orbiting(&surface.mesh.bounds(), 0.65, 0.35, 2.2);
    let (fb, _) = db.render(iso, &camera, 800, 800, [0.85, 0.75, 0.55])?;
    let out = std::env::temp_dir().join("oociso-quickstart.ppm");
    fb.write_ppm(&out)?;
    println!(
        "rendered {} covered pixels -> {}",
        fb.covered_pixels(),
        out.display()
    );
    Ok(())
}
