//! The unstructured-grid path: index a tetrahedral mesh's clusters with the
//! compact interval tree, extract an isosurface, verify its topology, and
//! export it as OBJ.
//!
//! Run: `cargo run --release --example unstructured_mesh`

use oociso::exio::{RecordStore, Span};
use oociso::itree::{CompactIntervalTree, RecordFormat};
use oociso::march::unstructured::extract_cluster;
use oociso::march::{analyze, TriangleSoup};
use oociso::metacell::MetacellInterval;
use oociso::volume::tetmesh::{TetCluster, TetMesh};
use oociso::volume::{Dims3, RmProxy, ScalarValue};

struct ClusterFormat {
    lens: Vec<usize>,
}

impl RecordFormat for ClusterFormat {
    fn header_len(&self) -> usize {
        12
    }
    fn parse_header(&self, bytes: &[u8]) -> (u32, u32) {
        (u32::from_le_bytes(bytes[0..4].try_into().unwrap()), 0)
    }
    fn record_len(&self, id: u32) -> usize {
        self.lens[id as usize]
    }
}

fn main() -> std::io::Result<()> {
    // tetrahedralize an RM proxy step — in practice this would be a native
    // unstructured simulation mesh
    let vol = RmProxy::with_seed(1).volume(220, Dims3::new(48, 48, 45));
    let mesh = TetMesh::from_volume(&vol);
    println!(
        "tet mesh: {} vertices, {} tets",
        mesh.num_vertices(),
        mesh.num_tets()
    );

    // clusters = unstructured metacells
    let clusters = mesh.clusters(64);
    let mut lens = vec![0usize; clusters.len()];
    let mut intervals = Vec::new();
    let mut culled = 0;
    for c in &clusters {
        lens[c.id as usize] = c.encoded_len();
        let (lo, hi) = c.value_interval().unwrap();
        if lo == hi {
            culled += 1;
        } else {
            intervals.push(MetacellInterval::new(c.id, lo, hi));
        }
    }
    println!(
        "{} clusters ({culled} constant, culled); indexing {} intervals",
        clusters.len(),
        intervals.len()
    );

    let mut bytes = Vec::new();
    let tree = CompactIntervalTree::build(&intervals, &mut |iv| {
        let rec = clusters[iv.id as usize].encode();
        let span = Span {
            offset: bytes.len() as u64,
            len: rec.len() as u64,
        };
        bytes.extend_from_slice(&rec);
        Ok(span)
    })?;
    let store = RecordStore::in_memory(bytes);
    println!(
        "compact interval tree: {} nodes, {} entries over {} distinct endpoints",
        tree.num_nodes(),
        tree.num_entries(),
        tree.num_endpoints()
    );

    let iso = 150.0;
    let mut soup = TriangleSoup::new();
    let plan = tree.plan(f32::query_key(iso));
    let stats = oociso::itree::execute_plan(&plan, &store, &ClusterFormat { lens }, |_, rec| {
        let (cluster, _) = TetCluster::decode(rec);
        extract_cluster(&cluster, iso, &mut soup);
    })?;
    println!(
        "isovalue {iso}: {} active clusters, {} triangles ({:.1} MB of {:.1} MB read)",
        stats.records_emitted,
        soup.len(),
        stats.bytes_read as f64 / 1e6,
        store.len() as f64 / 1e6
    );

    let report = analyze(&soup);
    println!(
        "topology: {} vertices, {} edges, {} faces, {} components, closed = {}",
        report.vertices,
        report.edges,
        report.faces,
        report.components,
        report.is_closed()
    );

    let out = std::env::temp_dir().join("oociso-unstructured.obj");
    soup.write_obj(&out)?;
    println!("exported -> {}", out.display());
    Ok(())
}
